"""Evaluation: recovery metrics and the experiment harness.

* :mod:`~repro.evaluation.metrics` — adjusted Rand index, partition agreement,
  cell accuracy, and semantic rule-recovery precision/recall against a known
  ground-truth policy.
* :mod:`~repro.evaluation.harness` — result tables and the runners shared by
  the benchmark suite (method comparison, alpha sweep).
"""

from repro.evaluation.harness import (
    ResultTable,
    evaluate_summary,
    run_alpha_sweep,
    run_method_comparison,
    run_search_profile,
    run_timeline_profile,
    standard_methods,
)
from repro.evaluation.metrics import (
    RuleRecovery,
    adjusted_rand_index,
    cell_accuracy,
    partition_agreement,
    partition_labels,
    rule_recovery,
)

__all__ = [
    "ResultTable",
    "evaluate_summary",
    "run_method_comparison",
    "run_alpha_sweep",
    "run_search_profile",
    "run_timeline_profile",
    "standard_methods",
    "RuleRecovery",
    "adjusted_rand_index",
    "cell_accuracy",
    "partition_agreement",
    "partition_labels",
    "rule_recovery",
]
