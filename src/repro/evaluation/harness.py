"""Experiment harness: run methods on workloads and tabulate the results.

Every benchmark in ``benchmarks/`` ultimately calls one of the runners here
and prints a :class:`ResultTable`, so the rows the paper-style experiments
report (method, workload, score, accuracy, interpretability, recovery metrics,
timings) come out of one place and look the same everywhere — in the
benchmarks, in the examples, and in EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.baselines import (
    exhaustive_summary,
    global_regression_summary,
    greedy_tree_summary,
    uniform_percentage_summary,
)
from repro.core.charles import Charles
from repro.core.config import CharlesConfig
from repro.core.scoring import score_summary
from repro.core.summary import ChangeSummary
from repro.evaluation.metrics import cell_accuracy, partition_agreement, rule_recovery
from repro.relational.snapshot import SnapshotPair
from repro.workloads.policies import Policy

__all__ = [
    "ResultTable",
    "evaluate_summary",
    "standard_methods",
    "run_method_comparison",
    "run_alpha_sweep",
    "run_search_profile",
    "run_timeline_profile",
]


@dataclass
class ResultTable:
    """An ordered collection of result rows with aligned-text / markdown rendering."""

    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    title: str = ""

    def add(self, **values: Any) -> None:
        """Append one result row (missing columns render as empty cells)."""
        self.rows.append(dict(values))

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    def _format_cell(self, value: Any) -> str:
        if value is None:
            return ""
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    def to_text(self) -> str:
        """Fixed-width text rendering (used by benchmark output and examples)."""
        header = [str(column) for column in self.columns]
        body = [[self._format_cell(row.get(column)) for column in self.columns] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
        lines.append("  ".join("-" * widths[i] for i in range(len(header))))
        for line in body:
            lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(header))))
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown table rendering (used by EXPERIMENTS.md)."""
        lines = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append(
                "| " + " | ".join(self._format_cell(row.get(column)) for column in self.columns) + " |"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_text()


def evaluate_summary(
    summary: ChangeSummary,
    pair: SnapshotPair,
    policy: Policy | None = None,
    config: CharlesConfig | None = None,
) -> dict[str, float]:
    """All scalar quality metrics of one summary on one pair (plus recovery if a policy is known)."""
    config = config or CharlesConfig()
    breakdown = score_summary(summary, pair, config)
    metrics: dict[str, float] = {
        "score": breakdown.score,
        "accuracy": breakdown.accuracy,
        "interpretability": breakdown.interpretability,
        "num_rules": float(summary.size),
        "cell_accuracy": cell_accuracy(summary, pair),
    }
    if policy is not None:
        truth = policy.summary
        recovery = rule_recovery(summary, truth, pair.source)
        metrics["rule_recall"] = recovery.recall
        metrics["rule_precision"] = recovery.precision
        metrics["rule_f1"] = recovery.f1
        metrics["partition_ari"] = partition_agreement(summary, truth, pair.source)
    return metrics


MethodFunction = Callable[[SnapshotPair], ChangeSummary]


def standard_methods(
    target: str,
    condition_attributes: Sequence[str],
    transformation_attributes: Sequence[str],
    config: CharlesConfig | None = None,
) -> dict[str, MethodFunction]:
    """The method suite of the E5 comparison: ChARLES plus every baseline."""
    config = config or CharlesConfig()

    def run_charles(pair: SnapshotPair) -> ChangeSummary:
        result = Charles(config).summarize_pair(
            pair,
            target,
            condition_attributes=condition_attributes,
            transformation_attributes=transformation_attributes,
        )
        return result.best.summary

    return {
        "charles": run_charles,
        "global-regression": lambda pair: global_regression_summary(
            pair, target, transformation_attributes, config
        ),
        "uniform-percentage": lambda pair: uniform_percentage_summary(pair, target),
        "greedy-tree": lambda pair: greedy_tree_summary(
            pair, target, condition_attributes, transformation_attributes, config
        ),
        "exhaustive-diff": lambda pair: exhaustive_summary(pair, target),
    }


def run_method_comparison(
    pair: SnapshotPair,
    policy: Policy,
    methods: Mapping[str, MethodFunction],
    config: CharlesConfig | None = None,
    workload: str = "",
) -> ResultTable:
    """Run every method on one workload and tabulate quality + runtime."""
    config = config or CharlesConfig()
    columns = [
        "workload", "method", "score", "accuracy", "interpretability", "num_rules",
        "cell_accuracy", "rule_recall", "rule_precision", "partition_ari", "seconds",
    ]
    table = ResultTable(columns, title=f"Method comparison on {workload or policy.name}")
    for name, method in methods.items():
        started = time.perf_counter()
        summary = method(pair)
        elapsed = time.perf_counter() - started
        metrics = evaluate_summary(summary, pair, policy, config)
        table.add(workload=workload, method=name, seconds=elapsed, **metrics)
    return table


def run_search_profile(
    pair: SnapshotPair,
    target: str,
    configs: Mapping[str, CharlesConfig],
    condition_attributes: Sequence[str] | None = None,
    transformation_attributes: Sequence[str] | None = None,
) -> ResultTable:
    """Profile the candidate search under several configurations.

    Runs ChARLES once per named configuration (e.g. serial vs. parallel, or
    pruning on vs. off) and tabulates the :class:`~repro.search.stats.
    SearchStats` of each run next to the winning score, so executor and cache
    behaviour can be compared on equal workloads.  The scaling benchmark (E6)
    uses this to record the search subsystem's performance trajectory.
    """
    columns = [
        "setting", "jobs", "seconds", "candidates", "evaluated", "pruned",
        "cache_hit_rate", "best_score",
    ]
    table = ResultTable(columns, title=f"Search profile on '{target}'")
    for name, config in configs.items():
        result = Charles(config).summarize_pair(
            pair,
            target,
            condition_attributes=condition_attributes,
            transformation_attributes=transformation_attributes,
        )
        stats = result.search_stats
        table.add(
            setting=name,
            jobs=stats.n_jobs if stats else config.n_jobs,
            seconds=stats.wall_time_seconds if stats else None,
            candidates=stats.candidates_enumerated if stats else result.total_candidates,
            evaluated=stats.candidates_evaluated if stats else None,
            pruned=stats.candidates_pruned if stats else None,
            cache_hit_rate=stats.cache_hit_rate if stats else None,
            best_score=result.best.score,
        )
    return table


def run_timeline_profile(
    timeline,
    target: str,
    config: CharlesConfig | None = None,
    condition_attributes: Sequence[str] | None = None,
    transformation_attributes: Sequence[str] | None = None,
    window: int = 1,
) -> ResultTable:
    """Cold per-hop runs versus one warm engine session over the same chain.

    For every hop of the ``timeline`` (a
    :class:`~repro.timeline.store.TimelineStore`), runs a fresh cold
    :class:`~repro.core.charles.Charles` and, separately, serves the whole
    chain from one warm :class:`~repro.timeline.session.EngineSession`; the
    table records wall time, candidate counts and cache behaviour side by
    side, plus whether the rankings came out byte-identical (they must — it is
    the subsystem's hard invariant, tabulated here so benchmark output shows
    it being checked).  ``benchmarks/bench_incremental.py`` measures the same
    cold-vs-warm contrast over a streaming-refresh workload and emits JSON;
    this runner is the single-pass tabular counterpart for harness users.
    """
    from repro.timeline.session import EngineSession

    config = config or CharlesConfig()
    columns = [
        "hop", "mode", "seconds", "candidates", "evaluated", "pruned",
        "cache_hit_rate", "best_score", "identical",
    ]
    table = ResultTable(columns, title=f"Timeline profile on '{target}' ({len(timeline)} versions)")

    cold_rows = []
    for source, target_version, pair in timeline.windowed_pairs(window):
        hop_name = f"{source.name}->{target_version.name}"
        started = time.perf_counter()
        result = Charles(config).summarize_pair(
            pair,
            target,
            condition_attributes=condition_attributes,
            transformation_attributes=transformation_attributes,
        )
        elapsed = time.perf_counter() - started
        cold_rows.append((hop_name, elapsed, result))

    session = EngineSession(config)
    started = time.perf_counter()
    timeline_result = session.summarize_timeline(
        timeline,
        target,
        condition_attributes=condition_attributes,
        transformation_attributes=transformation_attributes,
        window=window,
    )
    warm_elapsed = time.perf_counter() - started

    warm_rankings = timeline_result.rankings()
    hop_identical = [
        warm_rankings[index] == [(s.summary.describe(), s.score) for s in result.summaries]
        for index, (_, _, result) in enumerate(cold_rows)
    ]
    for index, (hop_name, elapsed, result) in enumerate(cold_rows):
        stats = result.search_stats
        table.add(
            hop=hop_name, mode="cold", seconds=elapsed,
            candidates=stats.candidates_enumerated if stats else None,
            evaluated=stats.candidates_evaluated if stats else None,
            pruned=stats.candidates_pruned if stats else None,
            cache_hit_rate=stats.cache_hit_rate if stats else None,
            best_score=result.best.score, identical=hop_identical[index],
        )
    for index, hop in enumerate(timeline_result.hops):
        stats = hop.stats
        table.add(
            hop=f"{hop.source_version}->{hop.target_version}", mode="warm",
            seconds=stats.wall_time_seconds if stats else 0.0,
            candidates=stats.candidates_enumerated if stats else None,
            evaluated=stats.candidates_evaluated if stats else None,
            pruned=stats.candidates_pruned if stats else None,
            cache_hit_rate=stats.cache_hit_rate if stats else None,
            best_score=hop.result.best.score,
            identical=hop_identical[index],
        )
    table.add(hop="total", mode="warm-session", seconds=warm_elapsed,
              cache_hit_rate=session.cache_counters().hit_rate,
              identical=all(hop_identical))
    return table


def run_alpha_sweep(
    pair: SnapshotPair,
    target: str,
    alphas: Sequence[float],
    condition_attributes: Sequence[str] | None = None,
    transformation_attributes: Sequence[str] | None = None,
    base_config: CharlesConfig | None = None,
    policy: Policy | None = None,
) -> ResultTable:
    """Re-rank summaries under different alpha values (the E3 tradeoff curve).

    For each alpha the engine is re-run (the ranking, snapping and selection
    all depend on the score), and the table records the winning summary's
    accuracy, interpretability and size — the curve the demo's step 6 lets a
    user explore interactively.
    """
    base_config = base_config or CharlesConfig()
    columns = ["alpha", "score", "accuracy", "interpretability", "num_rules", "rule_recall"]
    table = ResultTable(columns, title=f"Alpha sweep on '{target}'")
    for alpha in alphas:
        config = base_config.replace(alpha=float(alpha))
        result = Charles(config).summarize_pair(
            pair,
            target,
            condition_attributes=condition_attributes,
            transformation_attributes=transformation_attributes,
        )
        best = result.best
        row = {
            "alpha": float(alpha),
            "score": best.breakdown.score,
            "accuracy": best.breakdown.accuracy,
            "interpretability": best.breakdown.interpretability,
            "num_rules": float(best.summary.size),
        }
        if policy is not None:
            row["rule_recall"] = rule_recovery(best.summary, policy.summary, pair.source).recall
        table.add(**row)
    return table
