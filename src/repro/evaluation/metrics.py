"""Recovery metrics: how much of a ground-truth policy did a summary recover?

The synthetic workloads know the latent policy that produced the target
snapshot, which lets the evaluation quantify recovery along three axes:

* **cell accuracy** — what fraction of the changed cells does the summary
  reconstruct (within a relative tolerance)?
* **partition agreement** — do the summary's partitions coincide with the
  policy's partitions?  Measured by the adjusted Rand index over the per-row
  partition labels.
* **rule recovery** — treating each ground-truth rule as a retrieval target,
  how many are matched by some discovered rule (same rows, same effect)?
  Reported as precision / recall / F1 over rules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.summary import ChangeSummary
from repro.relational.snapshot import SnapshotPair
from repro.relational.table import Table

__all__ = [
    "adjusted_rand_index",
    "partition_labels",
    "partition_agreement",
    "cell_accuracy",
    "RuleRecovery",
    "rule_recovery",
]


def adjusted_rand_index(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Adjusted Rand index between two labelings of the same rows.

    1.0 means identical partitions (up to label renaming); 0.0 is the expected
    agreement of independent random partitions; negative values mean worse
    than chance.
    """
    labels_a = np.asarray(labels_a)
    labels_b = np.asarray(labels_b)
    if labels_a.shape != labels_b.shape:
        raise ValueError(f"label arrays differ in length: {labels_a.shape} vs {labels_b.shape}")
    n = labels_a.size
    if n == 0:
        return 1.0
    values_a = {value: i for i, value in enumerate(dict.fromkeys(labels_a.tolist()))}
    values_b = {value: i for i, value in enumerate(dict.fromkeys(labels_b.tolist()))}
    contingency = np.zeros((len(values_a), len(values_b)), dtype=float)
    for a, b in zip(labels_a.tolist(), labels_b.tolist()):
        contingency[values_a[a], values_b[b]] += 1.0

    def comb2(x: np.ndarray) -> np.ndarray:
        return x * (x - 1.0) / 2.0

    sum_comb_cells = float(comb2(contingency).sum())
    sum_comb_rows = float(comb2(contingency.sum(axis=1)).sum())
    sum_comb_cols = float(comb2(contingency.sum(axis=0)).sum())
    total_pairs = float(comb2(np.array([n], dtype=float))[0])
    expected = sum_comb_rows * sum_comb_cols / total_pairs if total_pairs else 0.0
    maximum = 0.5 * (sum_comb_rows + sum_comb_cols)
    if maximum == expected:
        return 1.0
    return (sum_comb_cells - expected) / (maximum - expected)


def partition_labels(summary: ChangeSummary, source: Table) -> np.ndarray:
    """Per-row partition labels induced by a summary (fallback partition = -1)."""
    labels = np.full(source.num_rows, -1, dtype=int)
    for index, assignment in enumerate(summary.partition_assignments(source)):
        if assignment.is_fallback:
            continue
        labels[assignment.mask] = index
    return labels


def partition_agreement(
    found: ChangeSummary, truth: ChangeSummary, source: Table
) -> float:
    """Adjusted Rand index between the partitions of two summaries over ``source``."""
    return adjusted_rand_index(partition_labels(found, source), partition_labels(truth, source))


def cell_accuracy(
    summary: ChangeSummary, pair: SnapshotPair, relative_tolerance: float = 0.005
) -> float:
    """Fraction of *changed* cells the summary reconstructs within tolerance."""
    changed = pair.changed_mask(summary.target)
    if not changed.any():
        return 1.0
    predictions = summary.apply(pair.source)[changed]
    actual = pair.target.numeric_column(summary.target)[changed]
    scale = np.maximum(np.abs(actual), 1e-9)
    good = np.abs(predictions - actual) <= relative_tolerance * scale
    good = good & ~np.isnan(predictions)
    return float(good.mean())


@dataclass(frozen=True)
class RuleRecovery:
    """Rule-level precision/recall of a discovered summary against a policy."""

    matched_truth_rules: int
    total_truth_rules: int
    matched_found_rules: int
    total_found_rules: int

    @property
    def recall(self) -> float:
        """Share of ground-truth rules that some discovered rule reproduces."""
        if self.total_truth_rules == 0:
            return 1.0
        return self.matched_truth_rules / self.total_truth_rules

    @property
    def precision(self) -> float:
        """Share of discovered rules that reproduce some ground-truth rule."""
        if self.total_found_rules == 0:
            return 1.0 if self.total_truth_rules == 0 else 0.0
        return self.matched_found_rules / self.total_found_rules

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        if self.precision + self.recall == 0.0:
            return 0.0
        return 2.0 * self.precision * self.recall / (self.precision + self.recall)


def rule_recovery(
    found: ChangeSummary,
    truth: ChangeSummary,
    source: Table,
    row_overlap_threshold: float = 0.8,
    value_tolerance: float = 0.01,
) -> RuleRecovery:
    """Match discovered rules to ground-truth rules semantically.

    A found rule matches a truth rule when (1) the sets of rows each one
    handles (under first-match semantics) overlap with Jaccard similarity at
    least ``row_overlap_threshold``, and (2) on the rows both handle, their
    predicted new values agree within ``value_tolerance`` (relative).  This is
    deliberately insensitive to syntactic differences — ``exp >= 3`` and
    ``exp >= 2`` match if they select the same employees and prescribe the
    same raise.
    """
    found_assignments = [a for a in found.partition_assignments(source) if not a.is_fallback]
    truth_assignments = [a for a in truth.partition_assignments(source) if not a.is_fallback]
    matched_truth = 0
    matched_found_indices: set[int] = set()
    for truth_assignment in truth_assignments:
        truth_mask = truth_assignment.mask
        best_index = None
        for index, found_assignment in enumerate(found_assignments):
            found_mask = found_assignment.mask
            union = float(np.sum(truth_mask | found_mask))
            if union == 0:
                continue
            jaccard = float(np.sum(truth_mask & found_mask)) / union
            if jaccard < row_overlap_threshold:
                continue
            both = truth_mask & found_mask
            if not both.any():
                continue
            rows = source.mask(both)
            truth_values = truth_assignment.conditional_transformation.transformation.apply(rows)
            found_values = found_assignment.conditional_transformation.transformation.apply(rows)
            scale = np.maximum(np.abs(truth_values), 1e-9)
            if np.all(np.abs(found_values - truth_values) <= value_tolerance * scale):
                best_index = index
                break
        if best_index is not None:
            matched_truth += 1
            matched_found_indices.add(best_index)
    return RuleRecovery(
        matched_truth_rules=matched_truth,
        total_truth_rules=len(truth_assignments),
        matched_found_rules=len(matched_found_indices),
        total_found_rules=len(found_assignments),
    )
