"""Timeline audit: track a latent policy as it evolves across many versions.

A payroll roster receives a new export every period; each period a different
latent policy moves the bonuses (a PhD retention wave, an MS tenure wave, a BS
catch-up wave, a salary-only adjustment that leaves bonuses alone).  One warm
:class:`~repro.timeline.session.EngineSession` audits every hop of the chain:
the delta layer shows where each hop concentrated its edits (and skips the hop
that never touched the bonus), while the session's persistent caches and
warm-started pruning floors keep repeated audits cheap — with rankings
guaranteed byte-identical to cold one-shot runs.

Run with::

    PYTHONPATH=src python examples/timeline_audit.py
"""

from __future__ import annotations

from repro import Charles, EngineSession
from repro.diff import timeline_diff
from repro.workloads import streaming_employee_timeline


def main() -> None:
    # a 5-version roster chain with known per-hop policies (ground truth)
    store, policies = streaming_employee_timeline(400, num_versions=5, seed=42)
    print(f"timeline: {' -> '.join(store.names)} ({store.latest.num_rows} employees)")
    for policy in policies:
        print(f"  latent {policy.name}: {policy.description}")
    print()

    # the syntactic view first: what did each hop actually touch?
    for source, target, report in timeline_diff(store):
        attributes = ", ".join(
            f"{diff.attribute} ({diff.changed_cells} cells)" for diff in report.attribute_diffs
        ) or "nothing"
        print(f"{source} -> {target}: {attributes}")
    print()

    # the semantic view: one warm session recovers each hop's bonus policy
    session = EngineSession()
    result = session.summarize_timeline(store, target="bonus")
    print(result.describe(limit=1))
    print()
    print(
        f"session: {session.runs_completed} searches, "
        f"{session.warm_start_fallbacks} warm-start fallback(s), "
        f"cache counters {session.cache_counters()}"
    )

    # the hard invariant, demonstrated on the first hop: a cold one-shot run
    # ranks byte-identically to the warm session
    first_hop = result.hops[0]
    cold = Charles().summarize_pair(store.pair("v1", "v2"), "bonus")
    identical = first_hop.ranking() == [
        (scored.summary.describe(), scored.score) for scored in cold.summaries
    ]
    print(f"warm ranking identical to cold ranking on v1 -> v2: {identical}")


if __name__ == "__main__":
    main()
