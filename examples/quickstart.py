"""Quickstart: recover the paper's Example 1 bonus policy in a dozen lines.

Runs ChARLES on the exact Fig. 1 snapshots (2016 and 2017 employee tables),
prints the ranked change summaries, and renders the best one as the linear
model tree of Fig. 2 and the partition treemap of Fig. 4 step 10.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Charles
from repro.core import summary_to_sql_update
from repro.viz import render_partition_treemap, render_summary_tree
from repro.workloads import example_snapshots


def main() -> None:
    # the two snapshots of the paper's Fig. 1 (same schema, same nine employees)
    source_2016, target_2017 = example_snapshots()

    charles = Charles()

    # the demo workflow: pick the target attribute, accept the assistant's
    # shortlists (here we pass the demo's selections explicitly), get summaries
    result = charles.summarize(
        source_2016,
        target_2017,
        target="bonus",
        key="name",
        condition_attributes=["edu", "exp", "gen"],
        transformation_attributes=["bonus", "salary"],
    )

    print(result.describe(limit=3))

    best = result.best.summary
    print("Best summary as a linear model tree (paper Fig. 2):\n")
    print(render_summary_tree(best))
    print()
    print(render_partition_treemap(best, result.pair))
    print()
    print("The same policy as an executable batch update:\n")
    print(summary_to_sql_update(best, "employees"))


if __name__ == "__main__":
    main()
