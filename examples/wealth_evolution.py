"""Wealth evolution: which industries drove this year's billionaire list changes?

The demo mentions the Forbes World's Billionaires list as an additional
dataset.  This example generates the synthetic equivalent — a list of
individuals with industry, country, age and net worth — evolves it with a
latent market-year policy (a tech boom, an energy correction, broad-market
drift), and asks ChARLES to explain how ``net_worth`` changed.  It also shows
the accuracy/interpretability dial (alpha) in action: an interpretability-
heavy setting prefers one coarse market-wide rule, the default recovers the
per-industry structure.

Run with::

    python examples/wealth_evolution.py [rows]
"""

from __future__ import annotations

import sys

from repro import Charles, CharlesConfig
from repro.evaluation import rule_recovery
from repro.viz import render_summary_tree
from repro.workloads import billionaires_pair, wealth_policy


def main(rows: int = 2_000) -> None:
    policy = wealth_policy()
    pair = billionaires_pair(rows, seed=3)
    print(f"Synthetic billionaires list: {pair.num_rows} people; "
          f"target attribute 'net_worth' (billions of dollars).\n")
    print("Latent market-year policy (what actually happened):")
    print(policy.describe())
    print()

    for alpha in (0.5, 0.1):
        charles = Charles(CharlesConfig(alpha=alpha))
        result = charles.summarize_pair(pair, "net_worth")
        best = result.best
        recovery = rule_recovery(best.summary, policy.summary, pair.source)
        print(f"--- alpha = {alpha} "
              f"(accuracy weight {alpha:.0%}, interpretability weight {1 - alpha:.0%}) ---")
        print(best.summary.describe())
        print(f"score={best.score:.3f}  accuracy={best.breakdown.accuracy:.3f}  "
              f"interpretability={best.breakdown.interpretability:.3f}  "
              f"ground-truth rules recovered: {recovery.matched_truth_rules}/{recovery.total_truth_rules}")
        print()

    default_result = Charles().summarize_pair(pair, "net_worth")
    print("Best summary at the default alpha, as a linear model tree:\n")
    print(render_summary_tree(default_result.best.summary))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2_000)
