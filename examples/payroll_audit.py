"""Payroll audit: what pay policy did the county apply this fiscal year?

This is the scenario the paper demonstrates on the Montgomery County, MD
employee-salary data: two yearly snapshots of a payroll with departments,
divisions, grades and several pay components, where the year-over-year changes
were driven by a negotiated cost-of-living agreement.  The real dataset is an
external download, so this example generates the synthetic equivalent (same
8-attribute schema, known ground-truth policy), runs ChARLES, compares the
recovered summary against the actual policy, and contrasts it with what a
plain cell-level diff would report.

Run with::

    python examples/payroll_audit.py [rows]
"""

from __future__ import annotations

import sys

from repro import Charles
from repro.diff import diff_snapshots
from repro.evaluation import evaluate_summary
from repro.viz import render_partition_treemap
from repro.workloads import cola_policy, montgomery_pair


def main(rows: int = 10_000) -> None:
    policy = cola_policy()
    pair = montgomery_pair(rows, seed=7)

    print(f"Synthetic Montgomery County payroll: {pair.num_rows} employees, "
          f"{pair.change_fraction('base_salary'):.0%} of base salaries changed.\n")
    print("Ground-truth policy (normally unknown to the analyst):")
    print(policy.describe())
    print()

    # what existing tools would show: an overwhelming cell listing
    cell_diff = diff_snapshots(pair, attributes=["base_salary"])
    print(f"A cell-level diff reports {cell_diff.num_changes} individual salary changes.\n")

    # what ChARLES shows: a handful of conditional transformations
    charles = Charles()
    suggestions = charles.suggest_attributes(pair.source, pair.target, "base_salary", key=pair.key)
    print(suggestions.describe())
    print()
    result = charles.summarize_pair(pair, "base_salary")
    print(result.describe(limit=3))
    print(render_partition_treemap(result.best.summary, result.pair))
    print()

    metrics = evaluate_summary(result.best.summary, pair, policy)
    print("Recovery against the ground-truth policy:")
    for name in ("score", "accuracy", "interpretability", "num_rules", "rule_recall", "partition_ari"):
        print(f"  {name:>18}: {metrics[name]:.3f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 10_000)
