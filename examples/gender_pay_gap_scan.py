"""Change-trend scan: did performance rewards differ by gender this year?

The paper's introduction motivates ChARLES with exactly this question: "an
explanation that semantically summarizes changes to highlight gender
disparities in performance rewards is more human-consumable than a long list
of employee salary changes."  This example constructs an employee snapshot
pair whose latent raise policy *does* treat genders differently, then shows
how the recovered change summary surfaces the disparity directly, and how the
drift report (a distribution-level view) hints at it but cannot name the rule.

Run with::

    python examples/gender_pay_gap_scan.py [rows]
"""

from __future__ import annotations

import sys

from repro import Charles, Condition, Descriptor, LinearTransformation
from repro.diff import drift_report
from repro.evaluation import rule_recovery
from repro.workloads import Policy, evolve_pair, generate_employees


def biased_raise_policy() -> Policy:
    """A deliberately inequitable raise policy: 6% for men, 3% for women."""
    return Policy.from_rules(
        name="FY raise (gender-disparate)",
        target="salary",
        description="male employees receive a 6% raise, female employees 3%",
        rules=[
            (
                Condition.of(Descriptor.equals("gen", "M")),
                LinearTransformation("salary", ("salary",), (1.06,), 0.0),
            ),
            (
                Condition.of(Descriptor.equals("gen", "F")),
                LinearTransformation("salary", ("salary",), (1.03,), 0.0),
            ),
        ],
    )


def main(rows: int = 3_000) -> None:
    policy = biased_raise_policy()
    source = generate_employees(rows, seed=11)
    pair = evolve_pair(source, policy, seed=12)

    print(f"Employee roster: {pair.num_rows} people; every salary changed this year.\n")

    print("What a distribution-level diff shows (Data-Diff style):")
    print(drift_report(pair, attributes=["salary"]).describe())
    print("  -> the salary distribution shifted, but by how much and for whom is not visible.\n")

    charles = Charles()
    result = charles.summarize_pair(pair, "salary")
    best = result.best
    print("What ChARLES reports:")
    print(best.summary.describe())
    print(f"score={best.score:.3f}  accuracy={best.breakdown.accuracy:.3f}")
    print()

    recovery = rule_recovery(best.summary, policy.summary, pair.source)
    if recovery.recall == 1.0:
        print("The gender-dependent raise structure was recovered exactly — the disparity "
              "is stated as an explicit pair of rules rather than buried in "
              f"{pair.num_rows} individual salary changes.")
    else:
        print(f"Recovered {recovery.matched_truth_rules} of {recovery.total_truth_rules} "
              "ground-truth rules; inspect the ranked list for alternatives.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3_000)
