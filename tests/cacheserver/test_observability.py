"""Observability across the socket: trace headers, server spans, METRICS."""

import os

import pytest

from repro.cacheserver import (
    CacheServer,
    RemoteBackend,
    server_metrics,
    server_trace,
)
from repro.cacheserver import protocol
from repro.obs.metrics import parse_prometheus
from repro.obs.trace import (
    BufferSink,
    disable_tracing,
    get_tracer,
    new_span_id,
    new_trace_id,
)


@pytest.fixture(autouse=True)
def _clean_tracer():
    disable_tracing()
    yield
    disable_tracing()


@pytest.fixture(scope="module")
def server():
    with CacheServer() as running:
        yield running


@pytest.fixture()
def backend(server):
    attached = RemoteBackend(server.url, protocol.REGION_FITS, namespace=os.urandom(8))
    yield attached
    attached.close()


def _context_bytes(trace_id: str, parent_id: str) -> bytes:
    return bytes.fromhex(trace_id) + bytes.fromhex(parent_id)


class TestProtocolTraceHeader:
    def test_get_round_trips_with_and_without_header(self):
        digest = os.urandom(protocol.DIGEST_SIZE)
        plain = protocol.encode_request(protocol.GET, protocol.REGION_FITS, digest=digest)
        decoded = protocol.decode_request(plain)
        assert decoded.trace == b"" and decoded.digest == digest
        context = _context_bytes(new_trace_id(), new_span_id())
        traced = protocol.encode_request(
            protocol.GET, protocol.REGION_FITS, digest=digest, trace=context
        )
        decoded = protocol.decode_request(traced)
        assert decoded.trace == context
        assert decoded.verb == protocol.GET and decoded.digest == digest

    def test_traced_frame_is_plain_frame_plus_header(self):
        digest = os.urandom(protocol.DIGEST_SIZE)
        context = _context_bytes(new_trace_id(), new_span_id())
        plain = protocol.encode_request(protocol.GET, protocol.REGION_FITS, digest=digest)
        traced = protocol.encode_request(
            protocol.GET, protocol.REGION_FITS, digest=digest, trace=context
        )
        assert len(traced) == len(plain) + protocol.TRACE_CONTEXT_SIZE
        assert traced[0] == protocol.GET | protocol.TRACE_FLAG
        assert traced[2 : 2 + protocol.TRACE_CONTEXT_SIZE] == context

    def test_mget_and_put_carry_the_header_too(self):
        context = _context_bytes(new_trace_id(), new_span_id())
        digests = tuple(os.urandom(protocol.DIGEST_SIZE) for _ in range(3))
        decoded = protocol.decode_request(
            protocol.encode_request(
                protocol.MGET, protocol.REGION_FITS, digests=digests, trace=context
            )
        )
        assert decoded.trace == context and decoded.digests == digests
        decoded = protocol.decode_request(
            protocol.encode_request(
                protocol.PUT,
                protocol.REGION_FITS,
                digest=digests[0],
                cost=0.5,
                payload=b"value",
                trace=context,
            )
        )
        assert decoded.trace == context and decoded.payload == b"value"

    def test_wrong_header_length_rejected_at_encode(self):
        with pytest.raises(protocol.ProtocolError, match="trace context"):
            protocol.encode_request(
                protocol.PING, protocol.REGION_ALL, trace=b"too-short"
            )

    def test_truncated_header_rejected_at_decode(self):
        body = bytes((protocol.PING | protocol.TRACE_FLAG, protocol.REGION_ALL)) + b"\x00" * 5
        with pytest.raises(protocol.ProtocolError, match="truncated"):
            protocol.decode_request(body)


class TestServerSpans:
    def test_traced_requests_buffer_spans_under_the_client_parent(self, server, backend):
        tracer = get_tracer()
        tracer.configure(BufferSink())
        with tracer.span("client.work") as client_span:
            backend.get("missing-key")
            backend.get("missing-key")
        spans = server_trace(server.url, trace_id=tracer.trace_id)
        assert spans, "the server buffered no spans for the trace"
        for span in spans:
            assert span["process"] == "server"
            assert span["name"] == "server.get"
            assert span["trace"] == tracer.trace_id
            assert span["parent"] == client_span.span_id
            assert span["attributes"]["url"] == server.url

    def test_drain_filters_by_trace_id_and_removes_what_it_returns(self, server, backend):
        tracer = get_tracer()
        tracer.configure(BufferSink())
        with tracer.span("first"):
            backend.get("key-one")
        first_trace = tracer.trace_id
        disable_tracing()
        tracer.configure(BufferSink())
        with tracer.span("second"):
            backend.get("key-two")
        second_trace = tracer.trace_id
        drained = server_trace(server.url, trace_id=first_trace)
        assert drained and all(span["trace"] == first_trace for span in drained)
        assert server_trace(server.url, trace_id=first_trace) == []
        # the other engine's spans stayed buffered for its own collection
        remaining = server_trace(server.url, trace_id=second_trace)
        assert remaining and all(span["trace"] == second_trace for span in remaining)

    def test_untraced_requests_buffer_nothing(self, server, backend):
        leftover = server_trace(server.url)  # drain whatever earlier tests left
        del leftover
        backend.get("untraced-key")
        assert server_trace(server.url) == []


class TestServerMetrics:
    def test_metrics_verb_renders_parseable_prometheus(self, server, backend):
        backend.get("metric-probe")
        samples = parse_prometheus(server_metrics(server.url))
        get_series = 'cacheserver_requests_total{verb="GET"}'
        assert samples[get_series] >= 1
        assert 'cacheserver_request_seconds_count{verb="GET"}' in samples
        assert samples["cacheserver_uptime_seconds"] >= 0

    def test_request_counter_advances_per_request(self, server, backend):
        series = 'cacheserver_requests_total{verb="GET"}'
        before = parse_prometheus(server_metrics(server.url))[series]
        backend.get("probe-a")
        backend.get("probe-b")
        after = parse_prometheus(server_metrics(server.url))[series]
        assert after == before + 2
