"""Consistent-hash routing: pure, deterministic, balanced, replica-aware."""

import os

import pytest

from repro.cacheserver.ring import VNODES, HashRing, parse_endpoints
from repro.exceptions import CacheStoreError

ENDPOINTS = ("cache-a.internal:8737", "cache-b.internal:8737", "cache-c.internal:8737")


def _digests(count: int, seed: int = 0) -> list[bytes]:
    # deterministic pseudo-digests: the ring only looks at the first 8 bytes
    import hashlib

    return [
        hashlib.blake2b(f"{seed}/{index}".encode(), digest_size=16).digest()
        for index in range(count)
    ]


class TestParseEndpoints:
    def test_single_endpoint_is_the_pr4_form(self):
        assert parse_endpoints("cache.internal:8737") == ("cache.internal:8737",)

    def test_comma_separated_list_with_whitespace(self):
        assert parse_endpoints(" a:1, b:2 ,c:3 ") == ("a:1", "b:2", "c:3")

    @pytest.mark.parametrize("bad", ["", " , ,", "a:1,notaport", "a:1,b:0", "a:1,:9"])
    def test_malformed_lists_rejected(self, bad):
        with pytest.raises(CacheStoreError):
            parse_endpoints(bad)

    def test_duplicate_endpoints_rejected(self):
        # a repeated endpoint would silently halve the effective replication
        with pytest.raises(CacheStoreError, match="twice"):
            parse_endpoints("a:1,b:2,a:1")


class TestRouting:
    def test_placement_is_deterministic_across_ring_instances(self):
        # every fleet member builds its own ring; they must all agree
        first, second = HashRing(ENDPOINTS), HashRing(ENDPOINTS)
        for digest in _digests(200):
            assert first.owner(digest) == second.owner(digest)
            assert first.preference(digest, 3) == second.preference(digest, 3)

    def test_placement_ignores_endpoint_list_storage(self):
        assert HashRing(list(ENDPOINTS)).owner(b"x" * 16) == HashRing(ENDPOINTS).owner(
            b"x" * 16
        )

    def test_owner_is_first_preference(self):
        ring = HashRing(ENDPOINTS)
        for digest in _digests(100):
            assert ring.preference(digest, 2)[0] == ring.owner(digest)

    def test_load_spreads_over_every_shard(self):
        ring = HashRing(ENDPOINTS)
        counts = [0] * len(ENDPOINTS)
        total = 3000
        for digest in _digests(total):
            counts[ring.owner(digest)] += 1
        # with 64 vnodes per endpoint the split is rough, not exact — but no
        # shard may be starved or hoard the space
        for count in counts:
            assert total / 10 < count < total / 2

    def test_preference_lists_distinct_endpoints(self):
        ring = HashRing(ENDPOINTS)
        for digest in _digests(200):
            preference = ring.preference(digest, 3)
            assert len(preference) == len(set(preference)) == 3

    def test_preference_clamped_to_fleet_size(self):
        ring = HashRing(ENDPOINTS)
        digest = os.urandom(16)
        assert len(ring.preference(digest, 99)) == len(ENDPOINTS)
        assert len(ring.preference(digest, 0)) == 1  # at least the owner

    def test_single_endpoint_ring_routes_everything_to_it(self):
        ring = HashRing(("only:1",))
        for digest in _digests(50):
            assert ring.owner(digest) == 0
            assert ring.preference(digest, 5) == [0]

    def test_removing_an_endpoint_moves_only_its_keys(self):
        # the consistent-hash property that makes fleet growth cheap: keys
        # owned by surviving shards must not move when one endpoint leaves
        full = HashRing(ENDPOINTS)
        shrunk = HashRing(ENDPOINTS[:2])
        for digest in _digests(500):
            owner = full.owner(digest)
            if owner < 2:
                assert shrunk.owner(digest) == owner

    def test_replica_successor_absorbs_a_dead_owner(self):
        # preference[1] under the full ring owns the key once the owner is
        # gone — this is why replication R=2 makes shard death free
        full = HashRing(ENDPOINTS)
        for digest in _digests(300):
            owner, successor = full.preference(digest, 2)
            survivors = tuple(e for i, e in enumerate(ENDPOINTS) if i != owner)
            reduced = HashRing(survivors)
            assert survivors[reduced.owner(digest)] == ENDPOINTS[successor]

    def test_empty_ring_and_bad_vnodes_rejected(self):
        with pytest.raises(CacheStoreError):
            HashRing(())
        with pytest.raises(CacheStoreError):
            HashRing(ENDPOINTS, vnodes=0)

    def test_vnode_count_is_meaningfully_large(self):
        assert VNODES >= 32  # balance depends on it; guard against regression
