"""The sharded fabric: routing, replication, failover, prefetch — same results.

Topology is never allowed to show up in results: the standing invariant is
byte-identical rankings across in-process caches, a 1-shard fabric, an
N-shard replicated fabric, and an N-shard fabric with a member killed
mid-run.  Everything else here pins down the mechanics that make that cheap:
replica-set writes, read failover around the ring, per-shard degradation and
round-synchronised MGET prefetching.
"""

import os
import pickle

import pytest

from repro.cachestore import MISSING
from repro.cacheserver import CacheServer, ShardedRemoteBackend, ShardedRemoteHandle
from repro.cacheserver import protocol
from repro.core import Charles, CharlesConfig


@pytest.fixture()
def fleet():
    """Three live cache servers and their comma-separated fabric URL."""
    servers = [CacheServer().start() for _ in range(3)]
    try:
        yield servers
    finally:
        for server in servers:
            server.shutdown()


def _url(servers) -> str:
    return ",".join(server.url for server in servers)


def _fabric(servers, **kwargs) -> ShardedRemoteBackend:
    kwargs.setdefault("namespace", os.urandom(8))
    return ShardedRemoteBackend(_url(servers), **kwargs)


def _entries(server) -> int:
    from repro.cacheserver import server_stats

    regions = server_stats(server.url)["regions"]
    return sum(region["entries"] for region in regions.values())


class TestSharding:
    def test_roundtrip_and_counters(self, fleet):
        fabric = _fabric(fleet)
        key = ("fit", "bonus", ("salary",), b"token")
        assert fabric.get(key) is MISSING
        fabric.put(key, {"value": 42}, cost_hint=0.01)
        assert fabric.get(key) == {"value": 42}
        assert fabric.hits == 1 and fabric.misses == 1
        fabric.close()

    def test_entries_spread_across_every_shard(self, fleet):
        fabric = _fabric(fleet)
        for index in range(60):
            fabric.put(("k", index), index)
        assert len(fabric) == 60  # replication=1: one physical copy per key
        per_shard = [_entries(server) for server in fleet]
        assert sum(per_shard) == 60
        assert all(count > 0 for count in per_shard)  # no shard starved
        fabric.close()

    def test_clear_drops_every_shard(self, fleet):
        fabric = _fabric(fleet)
        for index in range(30):
            fabric.put(("k", index), index)
        fabric.clear()
        assert len(fabric) == 0
        assert all(_entries(server) == 0 for server in fleet)
        fabric.close()

    def test_single_endpoint_fabric_behaves_like_pr4_client(self, fleet):
        fabric = ShardedRemoteBackend(fleet[0].url, namespace=os.urandom(8))
        assert fabric.get("k") is MISSING
        fabric.put("k", 1)
        assert fabric.get("k") == 1
        assert fabric.round_trips == 3  # miss, put, hit — one wire op each
        assert fabric.endpoints == (fleet[0].url,)
        fabric.close()

    def test_fabrics_agree_on_placement(self, fleet):
        # two engines with their own fabric instances serve each other's keys
        writer = _fabric(fleet)
        reader = ShardedRemoteBackend(_url(fleet), namespace=writer.namespace)
        for index in range(20):
            writer.put(("k", index), index)
        assert [reader.get(("k", index)) for index in range(20)] == list(range(20))
        writer.close(), reader.close()

    def test_breakdown_reports_per_endpoint_components(self, fleet):
        fabric = _fabric(fleet)
        for index in range(12):
            fabric.put(("k", index), index)
            fabric.get(("k", index))
        layers = fabric.breakdown()
        components = {name for name in layers if name.startswith("remote[")}
        assert components == {f"remote[{server.url}]" for server in fleet}
        assert sum(layers[name].round_trips for name in components) == (
            layers["remote"].round_trips
        )
        fabric.close()

    def test_replication_validation(self, fleet):
        with pytest.raises(ValueError):
            ShardedRemoteBackend(_url(fleet), replication=0)
        clamped = ShardedRemoteBackend(_url(fleet), replication=99)
        assert clamped.replication == 3  # clamped to the fleet size
        clamped.close()


class TestReplicationAndFailover:
    def test_replicated_put_lands_on_replica_set(self, fleet):
        fabric = _fabric(fleet, replication=2)
        for index in range(40):
            fabric.put(("k", index), index)
        # len() doubles as a write barrier: LEN answers arrive behind the
        # pipelined casts on each shard's connection, so the counts are final.
        # Physical occupancy doubles: owner + one successor per key.
        assert len(fabric) == 80
        assert sum(_entries(server) for server in fleet) == 80
        fabric.close()

    def test_shard_death_costs_zero_reuse_with_replication(self, fleet):
        fabric = _fabric(fleet, replication=2)
        for index in range(40):
            fabric.put(("k", index), index, cost_hint=0.01)
        fleet[0].shutdown()  # kill one member mid-conversation
        values = [fabric.get(("k", index)) for index in range(40)]
        assert values == list(range(40))  # every key still served
        assert fabric.hits == 40 and fabric.misses == 0
        assert fabric.failovers > 0  # dead-owner keys came off successors
        assert fabric.connection_failures >= 1
        fabric.close()

    def test_shard_death_without_replication_degrades_only_its_keys(self, fleet):
        fabric = _fabric(fleet, replication=1)
        for index in range(40):
            fabric.put(("k", index), index)
        fleet[0].shutdown()
        values = [fabric.get(("k", index)) for index in range(40)]
        missed = [index for index, value in enumerate(values) if value is MISSING]
        assert 0 < len(missed) < 40  # the dead shard's keys — and only those
        assert fabric.failovers == 0  # nowhere to fail over at R=1
        for index, value in enumerate(values):
            if index not in missed:
                assert value == index
        fabric.close()

    def test_owner_miss_is_authoritative(self, fleet):
        # a healthy owner answering MISS must not trigger replica reads:
        # replication is for availability, not for second opinions
        fabric = _fabric(fleet, replication=3)
        before = fabric.round_trips
        assert fabric.get("never-written") is MISSING
        assert fabric.round_trips == before + 1
        assert fabric.failovers == 0
        fabric.close()


class TestPrefetch:
    def test_get_many_is_one_mget_per_shard(self, fleet):
        fabric = _fabric(fleet)
        keys = [("k", index) for index in range(42)]
        for key in keys:
            fabric.put(key, key[1])
        before = fabric.round_trips
        assert fabric.get_many(keys) == [key[1] for key in keys]
        # 42 lookups cost at most one MGET per shard, not 42 round trips
        assert fabric.round_trips - before <= len(fleet)
        assert fabric.hits == 42
        fabric.close()

    def test_prefetch_buffer_is_one_shot(self, fleet):
        fabric = _fabric(fleet)
        fabric.put("k", 1)
        fabric.prefetch(["k"])
        before = fabric.round_trips
        assert fabric.get("k") == 1  # served from the buffer
        assert fabric.round_trips == before
        assert fabric.get("k") == 1  # buffer consumed: back on the wire
        assert fabric.round_trips == before + 1
        fabric.close()

    def test_put_supersedes_buffered_answer(self, fleet):
        fabric = _fabric(fleet)
        fabric.put("k", 1)
        fabric.prefetch(["k"])
        fabric.put("k", 2)  # fresher than whatever prefetch buffered
        assert fabric.get("k") == 2
        fabric.close()

    def test_prefetch_mixes_hits_and_misses_accurately(self, fleet):
        fabric = _fabric(fleet)
        for index in range(0, 30, 2):
            fabric.put(("k", index), index)
        values = fabric.get_many([("k", index) for index in range(30)])
        for index, value in enumerate(values):
            assert value == (index if index % 2 == 0 else MISSING)
        assert fabric.hits == 15 and fabric.misses == 15
        fabric.close()

    def test_degraded_shard_fails_prefetch_over_to_replicas(self, fleet):
        fabric = _fabric(fleet, replication=2)
        keys = [("k", index) for index in range(40)]
        for key in keys:
            fabric.put(key, key[1])
        fleet[0].shutdown()
        assert fabric.get_many(keys) == [key[1] for key in keys]
        assert fabric.hits == 40 and fabric.misses == 0
        assert fabric.failovers > 0
        fabric.close()

    def test_whole_fleet_down_prefetch_degrades_to_misses(self, fleet):
        fabric = _fabric(fleet, replication=2)
        for server in fleet:
            server.shutdown()
        assert fabric.get_many([("k", index) for index in range(10)]) == [MISSING] * 10
        assert fabric.misses == 10
        fabric.close()


class TestHandles:
    def test_handle_roundtrips_through_pickle(self, fleet):
        fabric = _fabric(fleet, replication=2, capacity=512)
        fabric.put("shared-key", [1, 2, 3])
        handle = fabric.handle()
        assert isinstance(handle, ShardedRemoteHandle)
        attached = pickle.loads(pickle.dumps(handle)).attach()
        assert attached.get("shared-key") == [1, 2, 3]
        assert attached.replication == 2 and attached.capacity == 512
        assert attached.endpoints == fabric.endpoints
        # counters are per-instance, like every other attached backend
        assert attached.hits == 1 and fabric.hits == 0
        attached.close(), fabric.close()

    def test_regions_stay_distinct_across_the_fabric(self, fleet):
        namespace = os.urandom(8)
        fits = ShardedRemoteBackend(
            _url(fleet), protocol.REGION_FITS, namespace=namespace
        )
        partitions = ShardedRemoteBackend(
            _url(fleet), protocol.REGION_PARTITIONS, namespace=namespace
        )
        fits.put("k", "fits-value")
        assert partitions.get("k") is MISSING
        fits.close(), partitions.close()


def _ranking(result):
    return [
        (
            scored.summary.describe(),
            scored.score,
            scored.condition_attributes,
            scored.transformation_attributes,
            scored.n_partitions,
        )
        for scored in result.summaries
    ]


def _summarize(pair, config):
    return Charles(config).summarize_pair(
        pair,
        "bonus",
        condition_attributes=["edu", "exp"],
        transformation_attributes=["bonus", "salary"],
    )


class TestTopologyNeverChangesResults:
    """The acceptance invariant: rankings are byte-identical per topology."""

    def test_rankings_identical_across_every_topology(self, fig1_pair):
        memory = _ranking(_summarize(fig1_pair, CharlesConfig()))

        servers = [CacheServer().start() for _ in range(3)]
        try:
            one_shard = CharlesConfig(
                cache_backend="remote", cache_url=servers[0].url
            )
            assert _ranking(_summarize(fig1_pair, one_shard)) == memory

            sharded = CharlesConfig(
                cache_backend="remote",
                cache_url=",".join(server.url for server in servers),
                cache_replication=2,
            )
            warm = _summarize(fig1_pair, sharded)
            assert _ranking(warm) == memory
            stats = warm.search_stats
            assert stats.cache_backend == "remote"
            assert stats.backend_counters["remote"].round_trips > 0

            servers[1].shutdown()  # a fleet member dies between runs
            degraded = _summarize(fig1_pair, sharded)
            assert _ranking(degraded) == memory
        finally:
            for server in servers:
                server.shutdown()

    def test_sharded_stats_expose_per_endpoint_layers(self, fig1_pair):
        servers = [CacheServer().start() for _ in range(2)]
        try:
            config = CharlesConfig(
                cache_backend="remote",
                cache_url=",".join(server.url for server in servers),
            )
            stats = _summarize(fig1_pair, config).search_stats
            layers = set(stats.backend_counters)
            assert "remote" in layers
            assert {f"remote[{server.url}]" for server in servers} <= layers
            payload = stats.as_dict()["backend_counters"]
            assert all("failovers" in counters for counters in payload.values())
        finally:
            for server in servers:
                server.shutdown()

    def test_second_engine_runs_fully_warm_off_the_fabric(self, fig1_pair):
        servers = [CacheServer().start() for _ in range(3)]
        try:
            config = CharlesConfig(
                cache_backend="remote",
                cache_url=",".join(server.url for server in servers),
                cache_replication=2,
            )
            first = _summarize(fig1_pair, config)
            second = _summarize(fig1_pair, config)
            assert _ranking(first) == _ranking(second)
            stats = second.search_stats
            assert stats.fit_cache_misses == 0 and stats.partition_cache_misses == 0
        finally:
            for server in servers:
                server.shutdown()
