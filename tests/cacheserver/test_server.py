"""The cache service itself: serving, admin verbs, eviction, degrade-to-miss."""

import os
import pickle
import socket
import threading

import pytest

from repro.cachestore import MISSING
from repro.cacheserver import (
    CacheServer,
    RemoteBackend,
    RemoteHandle,
    parse_url,
    server_clear,
    server_ping,
    server_stats,
)
from repro.cacheserver import protocol
from repro.exceptions import CacheStoreError, CharlesError, ConfigurationError


@pytest.fixture(scope="module")
def server():
    with CacheServer() as running:
        yield running


@pytest.fixture()
def backend(server):
    # a fresh namespace per test keeps tests invisible to each other while
    # sharing one server process, exactly like differently configured engines
    attached = RemoteBackend(server.url, protocol.REGION_FITS, namespace=os.urandom(8))
    yield attached
    attached.close()


class TestParseUrl:
    def test_host_port(self):
        assert parse_url("cache.internal:8737") == ("cache.internal", 8737)
        assert parse_url("tcp://10.0.0.7:901") == ("10.0.0.7", 901)

    @pytest.mark.parametrize("bad", ["", "justhost", ":80", "host:", "host:abc", "host:0"])
    def test_malformed_urls_rejected(self, bad):
        with pytest.raises(CacheStoreError):
            parse_url(bad)


class TestServing:
    def test_miss_then_put_then_hit(self, backend):
        key = ("fit", "bonus", ("salary",), b"token")
        assert backend.get(key) is MISSING
        backend.put(key, {"value": 42}, cost_hint=0.01)
        assert backend.get(key) == {"value": 42}
        assert backend.hits == 1 and backend.misses == 1
        assert backend.round_trips == 3

    def test_none_is_a_cacheable_value(self, backend):
        backend.put("none-key", None)
        assert backend.get("none-key") is None

    def test_overwrite_replaces(self, backend):
        backend.put("k", 1)
        backend.put("k", 2)
        assert backend.get("k") == 2

    def test_regions_are_distinct(self, server, backend):
        partitions = RemoteBackend(
            server.url, protocol.REGION_PARTITIONS, namespace=backend.namespace
        )
        backend.put("k", "fits-value")
        assert partitions.get("k") is MISSING
        partitions.close()

    def test_namespaces_partition_the_server(self, server):
        first = RemoteBackend(server.url, namespace=b"config-a")
        second = RemoteBackend(server.url, namespace=b"config-b")
        first.put("k", 1)
        assert second.get("k") is MISSING
        second.put("k", 2)
        assert first.get("k") == 1 and second.get("k") == 2
        first.close(), second.close()

    def test_handle_attach_reaches_same_entries(self, server, backend):
        backend.put("shared-key", [1, 2, 3])
        handle = backend.handle()
        assert isinstance(handle, RemoteHandle)
        attached = pickle.loads(pickle.dumps(handle)).attach()
        assert attached.get("shared-key") == [1, 2, 3]
        # counters are per-instance, like every other attached backend
        assert attached.hits == 1 and backend.hits == 0
        attached.close()

    def test_len_counts_region_entries(self, server):
        with CacheServer() as private:
            fits = RemoteBackend(private.url, protocol.REGION_FITS)
            fits.put("a", 1)
            fits.put("b", 2)
            assert len(fits) == 2
            fits.clear()
            assert len(fits) == 0
            fits.close()

    def test_concurrent_clients_stay_consistent(self, server):
        namespace = os.urandom(8)
        errors = []

        def hammer(worker: int) -> None:
            try:
                client = RemoteBackend(server.url, namespace=namespace)
                for index in range(40):
                    client.put(("k", worker, index), index, cost_hint=0.001)
                    assert client.get(("k", worker, index)) == index
                client.close()
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(n,)) for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        check = RemoteBackend(server.url, namespace=namespace)
        assert check.get(("k", 3, 39)) == 39
        check.close()


class TestAdminVerbs:
    def test_ping(self, server):
        assert server_ping(server.url)

    def test_stats_reports_both_regions(self, server, backend):
        backend.put("k", 1)
        backend.get("k")
        stats = server_stats(server.url)
        assert set(stats["regions"]) == {"fits", "partitions"}
        fits = stats["regions"]["fits"]
        assert fits["entries"] >= 1 and fits["hits"] >= 1
        assert stats["server"]["policy"] == "cost-aware"
        assert stats["server"]["requests"] > 0

    def test_clear_drops_every_region(self):
        with CacheServer() as private:
            fits = RemoteBackend(private.url, protocol.REGION_FITS)
            partitions = RemoteBackend(private.url, protocol.REGION_PARTITIONS)
            fits.put("a", 1)
            partitions.put("b", 2)
            server_clear(private.url)
            assert len(fits) == 0 and len(partitions) == 0
            fits.close(), partitions.close()

    def test_unknown_region_is_an_error_response_not_a_crash(self, server):
        with socket.create_connection(server.address) as sock:
            protocol.send_message(sock, 7, bytes((protocol.LEN, 77)))  # no such region
            request_id, body = protocol.recv_message(sock)
            status, payload = protocol.decode_response(body)
            assert request_id == 7  # errors still carry the request id back
            assert status == protocol.ERROR and b"region" in payload
            # the connection survives the error and keeps serving
            protocol.send_message(
                sock, 8, protocol.encode_request(protocol.PING, protocol.REGION_ALL)
            )
            request_id, body = protocol.recv_message(sock)
            assert request_id == 8
            assert protocol.decode_response(body)[0] == protocol.OK

    def test_unframeable_client_is_dropped_quietly(self, server):
        with socket.create_connection(server.address) as sock:
            sock.sendall(b"\xff\xff\xff\xff")  # a 4 GiB length prefix
            assert sock.recv(1024) == b""  # server closed on us
        assert server_ping(server.url)  # and is still healthy


class TestEvictionOnTheServer:
    def test_cost_aware_region_retains_expensive_entries(self):
        with CacheServer(capacity=3, policy="cost-aware") as bounded:
            client = RemoteBackend(bounded.url)
            client.put("expensive", list(range(8)), cost_hint=4.0)
            for index in range(10):
                client.put(f"cheap{index}", list(range(8)), cost_hint=0.0001)
            assert client.get("expensive") == list(range(8))
            assert server_stats(bounded.url)["regions"]["fits"]["evictions"] == 8
            client.close()

    def test_lru_policy_is_available_for_comparison(self):
        with CacheServer(capacity=3, policy="lru") as bounded:
            client = RemoteBackend(bounded.url)
            client.put("expensive", list(range(8)), cost_hint=4.0)
            for index in range(10):
                client.put(f"cheap{index}", list(range(8)), cost_hint=0.0001)
            # recency-only retention forgets the expensive entry
            assert client.get("expensive") is MISSING
            client.close()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheServer(policy="random")

    def test_invalid_capacity_rejected_as_configuration_error(self):
        # ConfigurationError (not ValueError) so the CLI exits 2 cleanly
        with pytest.raises(ConfigurationError):
            CacheServer(capacity=0)

    def test_heap_eviction_scales_with_removals_and_overwrites(self):
        # exercise the lazy-deletion heap: overwrites orphan entries, clear
        # resets, and eviction order still follows density then insertion
        with CacheServer(capacity=2, policy="cost-aware") as bounded:
            client = RemoteBackend(bounded.url)
            client.put("a", b"x", cost_hint=0.1)
            client.put("a", b"x", cost_hint=3.0)  # upgrade orphans the 0.1 entry
            client.put("b", b"y", cost_hint=1.0)
            client.put("c", b"z", cost_hint=0.5)  # evicts the cheapest: "c" itself
            assert client.get("a") == b"x" and client.get("b") == b"y"
            assert client.get("c") is MISSING
            client.close()


class TestDegradeToMiss:
    def test_unreachable_server_degrades_instead_of_raising(self):
        backend = RemoteBackend("127.0.0.1:9")  # the discard port: nothing there
        assert backend.get("k") is MISSING
        backend.put("k", 1)  # a silent no-op
        assert len(backend) == 0
        backend.clear()  # also a no-op
        assert backend.misses == 1
        assert backend.connection_failures >= 1
        assert backend.round_trips == 0

    def test_construction_never_contacts_the_server(self):
        # a fleet engine must boot while the cache service is still down
        backend = RemoteBackend("127.0.0.1:9")
        assert backend.round_trips == 0 and backend.connection_failures == 0

    def test_server_death_mid_conversation_degrades(self):
        private = CacheServer().start()
        backend = RemoteBackend(private.url)
        backend.put("k", 1)
        assert backend.get("k") == 1
        private.shutdown()
        assert backend.get("k") is MISSING  # dead server: miss, not exception
        assert backend.connection_failures >= 1
        backend.close()

    def test_client_recovers_after_backoff_when_server_returns(self):
        from repro.cacheserver import client as client_module

        private = CacheServer().start()
        host, port = private.address
        backend = RemoteBackend(private.url)
        backend.put("k", 1)
        private.shutdown()
        assert backend.get("k") is MISSING  # the failure that starts the backoff
        # a new server on the same port (the entries are gone with the old one)
        revived = CacheServer(host=host, port=port).start()
        try:
            for _ in range(client_module.RETRY_AFTER_OPS):
                backend.get("k")  # burn through the degraded op budget
            backend._retry_not_before = 0.0  # and skip the wall-clock window
            backend.put("k", 2)
            assert backend.get("k") == 2  # reconnected and serving again
        finally:
            revived.shutdown()
            backend.close()

    def test_backoff_window_blocks_reconnection_attempts(self):
        from repro.cacheserver import client as client_module

        backend = RemoteBackend("127.0.0.1:9")
        assert backend.get("k") is MISSING  # first failure opens the window
        assert backend.connection_failures == 1
        for _ in range(client_module.RETRY_AFTER_OPS + 5):
            backend.get("k")
        # the op budget is burned, but the wall-clock window (1s, far longer
        # than this loop) must still hold the next connect attempt back — this
        # is what bounds the stalls a blackholed server can cause
        assert backend.connection_failures == 1
        backend._retry_not_before = 0.0
        backend.get("k")
        assert backend.connection_failures == 2  # window over: attempt made
        backend.close()

    def test_shutdown_is_idempotent(self):
        private = CacheServer().start()
        private.shutdown()
        private.shutdown()


class TestCharlesErrorHierarchy:
    def test_admin_failures_are_charles_errors(self):
        # so the CLI's one except-clause turns them into exit code 2
        with pytest.raises(CharlesError):
            server_stats("127.0.0.1:9")
