"""Pipelined-window backpressure: throttle on a slow peer, die on a silent one.

The original backpressure rule waited on the oldest pending response with a
fixed timeout and killed the whole connection — and every request pending on
it — whenever that single response was late, even while the server was
demonstrably answering everything else.  A saturated window against a merely
slow shard therefore amplified latency into a full connection loss (and a
degrade window).  The rule is now progress-based: any response arriving
resets the deadline, so only a peer that stays *completely* silent for a
full timeout is declared dead.

These tests script both peers precisely: a server that answers newest-first
(so the oldest response is late while progress continues) must not get the
connection killed; a server that reads and never answers must.
"""

import socket
import threading
import time

import pytest

from repro.cacheserver import protocol
from repro.cacheserver import pipeline as pipeline_module
from repro.cacheserver.pipeline import PipelinedConnection

_PONG = protocol.encode_response(protocol.OK, b"pong")


class _LifoServer:
    """Answers every frame correctly — but newest-first, one per ``cadence``.

    With a saturated window this keeps the *oldest* response pending far
    longer than the timeout while responses keep arriving: exactly the
    slow-but-progressing shape the old backpressure rule misread as death.
    """

    def __init__(self, cadence: float) -> None:
        self._cadence = cadence
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.address = self._listener.getsockname()
        self._stack: list[int] = []
        self._lock = threading.Lock()
        self._conn: socket.socket | None = None
        threading.Thread(target=self._serve, daemon=True).start()

    def _serve(self) -> None:
        try:
            conn, _ = self._listener.accept()
        except OSError:  # pragma: no cover - closed before a client came
            return
        self._conn = conn
        conn.settimeout(0.05)
        threading.Thread(target=self._answer, daemon=True).start()
        buffer = bytearray()
        while True:
            try:
                chunk = conn.recv(1 << 16)
            except TimeoutError:
                continue
            except OSError:
                return
            if not chunk:
                return
            buffer += chunk
            try:
                frames = protocol.drain_frames(buffer)
            except protocol.ProtocolError:  # pragma: no cover - clean client
                return
            with self._lock:
                for frame in frames:
                    self._stack.append(protocol.parse_message(frame)[0])

    def _answer(self) -> None:
        while True:
            time.sleep(self._cadence)
            with self._lock:
                request_id = self._stack.pop() if self._stack else None
            if request_id is None:
                continue
            try:
                self._conn.sendall(protocol.frame_message(request_id, _PONG))
            except OSError:
                return

    def close(self) -> None:
        self._listener.close()
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:  # pragma: no cover
                pass


class _SilentServer:
    """Accepts and reads forever; never answers a single frame."""

    def __init__(self) -> None:
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.address = self._listener.getsockname()
        threading.Thread(target=self._serve, daemon=True).start()

    def _serve(self) -> None:
        try:
            conn, _ = self._listener.accept()
        except OSError:  # pragma: no cover
            return
        with conn:
            try:
                while conn.recv(1 << 16):
                    pass
            except OSError:
                pass

    def close(self) -> None:
        self._listener.close()


_PING = protocol.encode_request(protocol.PING, protocol.REGION_ALL)


class TestProgressBasedBackpressure:
    def test_slow_but_progressing_server_never_gets_killed(self, monkeypatch):
        # window of 4, responses every 0.15s newest-first, timeout 0.5s: the
        # oldest response takes ~4 * 0.15 > timeout to arrive, but progress
        # keeps resetting the deadline — the connection must survive and
        # every single future must resolve
        monkeypatch.setattr(pipeline_module, "MAX_IN_FLIGHT", 4)
        server = _LifoServer(cadence=0.15)
        try:
            connection = PipelinedConnection(server.address, timeout=0.5)
            futures = [connection.submit(_PING) for _ in range(12)]
            answers = [future.result(timeout=10.0) for future in futures]
            assert connection.alive
            assert answers == [(protocol.OK, b"pong")] * 12
            connection.close()
        finally:
            server.close()

    def test_silent_server_is_still_declared_dead_promptly(self, monkeypatch):
        monkeypatch.setattr(pipeline_module, "MAX_IN_FLIGHT", 4)
        server = _SilentServer()
        try:
            connection = PipelinedConnection(server.address, timeout=0.5)
            started = time.monotonic()
            futures = [connection.submit(_PING) for _ in range(6)]
            elapsed = time.monotonic() - started
            assert not connection.alive  # zero progress for a full timeout
            # one no-progress window, not one timeout per queued request
            assert elapsed < 3.0
            for future in futures:
                with pytest.raises(ConnectionError):
                    future.result(timeout=1.0)
            connection.close()
        finally:
            server.close()

    def test_order_bookkeeping_stays_bounded_under_out_of_order_resolution(
        self, monkeypatch
    ):
        # the deque skips resolved ids lazily; after the whole window drains
        # it must not have accumulated stale entries proportional to traffic
        monkeypatch.setattr(pipeline_module, "MAX_IN_FLIGHT", 8)
        server = _LifoServer(cadence=0.01)
        try:
            connection = PipelinedConnection(server.address, timeout=5.0)
            futures = [connection.submit(_PING) for _ in range(100)]
            for future in futures:
                assert future.result(timeout=10.0) == (protocol.OK, b"pong")
            deadline = time.monotonic() + 5.0
            while connection._pending and time.monotonic() < deadline:
                time.sleep(0.01)
            assert not connection._pending
            # stale ids are capped by the window size, never the total sent
            assert len(connection._order) <= 2 * 8
            assert connection.alive
            connection.close()
        finally:
            server.close()

    def test_epoch_high_water_mark_survives_reconnects(self):
        # the ShardClient keeps the newest epoch across connection loss —
        # a shard answering once with an epoch then dying must not reset it
        from repro.cacheserver import CacheServer, ShardClient, fleet_join

        with CacheServer() as first, CacheServer() as second:
            fleet_join([first.url], second.url)
            client = ShardClient(first.url)
            assert client.call(_PING) is not None
            assert client.topology_epoch == 1
            client._drop_connection()
            assert client.topology_epoch == 1  # survived the drop
            client.close()
