"""The cache service changes where entries live, never what a search returns.

The hard invariants of the subsystem, end to end through real engines:
rankings with a remote store are byte-identical to in-process rankings —
including when several engine processes race on one server, and when the
server is killed mid-session (degrade to miss, never to a wrong result).
"""

import multiprocessing

import pytest

from repro.core import Charles, CharlesConfig
from repro.cacheserver import CacheServer, server_stats
from repro.timeline import EngineSession

_FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()


def _ranking(result):
    """Byte-exact identity of a ranked result: text, scores and provenance."""
    return [
        (
            scored.summary.describe(),
            scored.score,
            scored.condition_attributes,
            scored.transformation_attributes,
            scored.n_partitions,
        )
        for scored in result.summaries
    ]


def _summarize(pair, config):
    return Charles(config).summarize_pair(
        pair,
        "bonus",
        condition_attributes=["edu", "exp"],
        transformation_attributes=["bonus", "salary"],
    )


@pytest.fixture(scope="module")
def server():
    with CacheServer() as running:
        yield running


@pytest.fixture(scope="module")
def memory_ranking(fig1_pair):
    return _ranking(_summarize(fig1_pair, CharlesConfig()))


class TestRankingsAgainstServer:
    def test_remote_backend_identical(self, fig1_pair, memory_ranking, server):
        config = CharlesConfig(cache_backend="remote", cache_url=server.url)
        result = _summarize(fig1_pair, config)
        assert _ranking(result) == memory_ranking
        stats = result.search_stats
        assert stats.cache_backend == "remote"
        # a one-shot run honours the remote backend (the store outlives the
        # run and serves the fleet), unlike the nothing-to-share shared kind
        assert stats.cache_backend_requested is None

    def test_remote_layer_reports_round_trips(self, fig1_pair, server):
        config = CharlesConfig(cache_backend="remote", cache_url=server.url)
        stats = _summarize(fig1_pair, config).search_stats
        remote = stats.backend_counters["remote"]
        assert remote.round_trips > 0
        # batched MGET prefetches answer many lookups per wire request, so the
        # round-trip count sits below the lookup count — but every lookup was
        # answered by the server, so the gap is bounded by the hits served
        assert remote.round_trips + remote.hits >= remote.hits + remote.misses
        payload = stats.as_dict()
        assert payload["backend_counters"]["remote"]["round_trips"] > 0
        assert payload["backend_counters"]["remote"]["failovers"] == 0

    def test_second_engine_is_fully_warm_off_the_server(self, fig1_pair, memory_ranking, server):
        config = CharlesConfig(cache_backend="remote", cache_url=server.url)
        first = _summarize(fig1_pair, config)
        # a brand-new engine (fresh caches object, fresh connection): every
        # lookup must come off the entries the first engine published
        second = _summarize(fig1_pair, config)
        assert _ranking(second) == _ranking(first) == memory_ranking
        stats = second.search_stats
        assert stats.fit_cache_misses == 0 and stats.partition_cache_misses == 0

    def test_engine_session_over_remote(self, fig1_pair, memory_ranking, server):
        config = CharlesConfig(cache_backend="remote", cache_url=server.url)
        with EngineSession(config) as session:
            result = session.summarize_pair(
                fig1_pair,
                "bonus",
                condition_attributes=["edu", "exp"],
                transformation_attributes=["bonus", "salary"],
            )
        assert _ranking(result) == memory_ranking

    def test_namespacing_keeps_reconfigured_runs_cold(self, fig1_pair, server):
        config = CharlesConfig(cache_backend="remote", cache_url=server.url)
        _summarize(fig1_pair, config)
        # a different seed changes k-means outcomes without changing content
        # keys — the reconfigured run must recompute, not reuse seed-0 entries
        stats = _summarize(fig1_pair, config.replace(seed=123)).search_stats
        assert stats.fit_cache_misses > 0 and stats.partition_cache_misses > 0
        warm = _summarize(fig1_pair, config).search_stats
        assert warm.fit_cache_misses == 0 and warm.partition_cache_misses == 0

    def test_server_sees_both_regions(self, fig1_pair, server):
        config = CharlesConfig(cache_backend="remote", cache_url=server.url)
        _summarize(fig1_pair, config)
        regions = server_stats(server.url)["regions"]
        assert regions["fits"]["entries"] > 0
        assert regions["partitions"]["entries"] > 0


def _fleet_engine(url, barrier, queue):
    """One fleet member: summarize against the shared server (child process)."""
    from repro.workloads import example_pair

    pair = example_pair()
    config = CharlesConfig(cache_backend="remote", cache_url=url)
    barrier.wait(timeout=30)  # genuinely concurrent, not accidentally serial
    result = _summarize(pair, config)
    misses = result.search_stats.fit_cache_misses + result.search_stats.partition_cache_misses
    queue.put((_ranking(result), misses))


@pytest.mark.skipif(not _FORK_AVAILABLE, reason="needs the fork start method")
class TestFleetProcesses:
    def test_two_concurrent_engine_processes_identical_rankings(
        self, fig1_pair, memory_ranking
    ):
        # separate *processes* (the acceptance shape): no Python state shared
        # with this test, every reused entry travelled through the server
        context = multiprocessing.get_context("fork")
        with CacheServer() as private:
            queue = context.Queue()
            barrier = context.Barrier(2)
            engines = [
                context.Process(target=_fleet_engine, args=(private.url, barrier, queue))
                for _ in range(2)
            ]
            for engine in engines:
                engine.start()
            results = [queue.get(timeout=120) for _ in engines]
            for engine in engines:
                engine.join(timeout=30)
                assert engine.exitcode == 0
        for ranking, _ in results:
            assert ranking == memory_ranking

    def test_second_fleet_member_starts_warm(self, memory_ranking):
        context = multiprocessing.get_context("fork")
        with CacheServer() as private:
            rankings = []
            for expected_cold in (True, False):
                queue = context.Queue()
                barrier = context.Barrier(1)
                engine = context.Process(
                    target=_fleet_engine, args=(private.url, barrier, queue)
                )
                engine.start()
                ranking, misses = queue.get(timeout=120)
                engine.join(timeout=30)
                assert engine.exitcode == 0
                rankings.append(ranking)
                if expected_cold:
                    assert misses > 0
                else:
                    # the whole search served off the first member's entries
                    assert misses == 0
        assert rankings[0] == rankings[1] == memory_ranking


class TestServerOutage:
    def test_mid_session_server_kill_degrades_to_identical_results(
        self, fig1_pair, memory_ranking
    ):
        private = CacheServer().start()
        config = CharlesConfig(cache_backend="remote", cache_url=private.url)
        with EngineSession(config.replace(warm_start=False)) as session:
            kwargs = dict(
                condition_attributes=["edu", "exp"],
                transformation_attributes=["bonus", "salary"],
            )
            alive = session.summarize_pair(fig1_pair, "bonus", **kwargs)
            assert _ranking(alive) == memory_ranking
            private.shutdown()  # the fleet cache dies mid-session
            dead = session.summarize_pair(fig1_pair, "bonus", **kwargs)
            # every lookup degraded to a miss — and the ranking is *still*
            # byte-identical, the outage cost recomputation time only
            assert _ranking(dead) == memory_ranking
            stats = dead.search_stats
            assert stats.fit_cache_hits == 0 and stats.partition_cache_hits == 0
            assert stats.fit_cache_misses > 0

    def test_engine_boots_and_runs_with_no_server_at_all(self, fig1_pair, memory_ranking):
        config = CharlesConfig(cache_backend="remote", cache_url="127.0.0.1:9")
        result = _summarize(fig1_pair, config)
        assert _ranking(result) == memory_ranking
        remote = result.search_stats.backend_counters["remote"]
        assert remote.hits == 0 and remote.round_trips == 0


class TestConfigValidation:
    def test_remote_requires_cache_url(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            CharlesConfig(cache_backend="remote")

    def test_cache_url_is_execution_neutral(self):
        base = CharlesConfig()
        pointed = base.replace(cache_backend="remote", cache_url="cache.internal:8737")
        # where entries live never affects results, so the fingerprint — and
        # with it every persistent namespace — must not rotate
        assert pointed.cache_fingerprint() == base.cache_fingerprint()
