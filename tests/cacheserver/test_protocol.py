"""Wire-format tests: frames round-trip, malformed bytes are loud, bounds hold."""

import socket
import struct
import threading

import pytest

from repro.cacheserver import protocol
from repro.cacheserver.protocol import (
    CLEAR,
    DIGEST_SIZE,
    ERROR,
    GET,
    HIT,
    LEN,
    MISS,
    OK,
    PING,
    PUT,
    REGION_ALL,
    REGION_FITS,
    REGION_PARTITIONS,
    STATS,
    ProtocolError,
    Request,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    pack_count,
    recv_frame,
    send_frame,
    unpack_count,
)

DIGEST = bytes(range(DIGEST_SIZE))


class TestRequestCodec:
    def test_get_round_trip(self):
        body = encode_request(GET, REGION_FITS, digest=DIGEST)
        assert decode_request(body) == Request(GET, REGION_FITS, digest=DIGEST)

    def test_put_round_trip_carries_cost_and_payload(self):
        body = encode_request(
            PUT, REGION_PARTITIONS, digest=DIGEST, cost=0.125, payload=b"pickled"
        )
        request = decode_request(body)
        assert request.verb == PUT and request.region == REGION_PARTITIONS
        assert request.digest == DIGEST
        assert request.cost == 0.125
        assert request.payload == b"pickled"

    def test_put_empty_payload_is_legal(self):
        # pickled values are never empty, but the frame format must not care
        request = decode_request(encode_request(PUT, REGION_FITS, digest=DIGEST))
        assert request.payload == b"" and request.cost == 0.0

    def test_admin_verbs_round_trip(self):
        for verb in (PING, LEN, CLEAR, STATS):
            request = decode_request(encode_request(verb, REGION_ALL))
            assert request.verb == verb and request.region == REGION_ALL

    def test_bad_digest_length_rejected_at_encode(self):
        with pytest.raises(ProtocolError):
            encode_request(GET, REGION_FITS, digest=b"short")

    def test_bad_digest_length_rejected_at_decode(self):
        with pytest.raises(ProtocolError):
            decode_request(bytes((GET, REGION_FITS)) + b"short")

    def test_truncated_put_rejected(self):
        with pytest.raises(ProtocolError):
            decode_request(bytes((PUT, REGION_FITS)) + DIGEST[:4])

    def test_unknown_verb_rejected(self):
        with pytest.raises(ProtocolError):
            decode_request(bytes((99, REGION_FITS)))

    def test_empty_body_rejected(self):
        with pytest.raises(ProtocolError):
            decode_request(b"")


class TestResponseCodec:
    def test_statuses_round_trip(self):
        assert decode_response(encode_response(HIT, b"value")) == (HIT, b"value")
        assert decode_response(encode_response(MISS)) == (MISS, b"")
        assert decode_response(encode_response(OK, b"pong")) == (OK, b"pong")
        assert decode_response(encode_response(ERROR, b"boom")) == (ERROR, b"boom")

    def test_empty_response_rejected(self):
        with pytest.raises(ProtocolError):
            decode_response(b"")

    def test_count_payload_round_trip(self):
        assert unpack_count(pack_count(0)) == 0
        assert unpack_count(pack_count(2**40)) == 2**40
        with pytest.raises(ProtocolError):
            unpack_count(b"\x00\x01")


class _SocketPair:
    """A connected local socket pair for exercising the framing layer."""

    def __enter__(self):
        self.left, self.right = socket.socketpair()
        return self.left, self.right

    def __exit__(self, *exc_info):
        self.left.close()
        self.right.close()


class TestFraming:
    def test_frames_round_trip_in_order(self):
        with _SocketPair() as (left, right):
            send_frame(left, b"first")
            send_frame(left, b"")
            send_frame(left, b"third" * 1000)
            assert recv_frame(right) == b"first"
            assert recv_frame(right) == b""
            assert recv_frame(right) == b"third" * 1000

    def test_clean_eof_returns_none(self):
        with _SocketPair() as (left, right):
            left.close()
            assert recv_frame(right) is None

    def test_eof_mid_frame_raises(self):
        with _SocketPair() as (left, right):
            left.sendall(struct.pack(">I", 100) + b"only a few bytes")
            left.close()
            with pytest.raises(ProtocolError):
                recv_frame(right)

    def test_oversized_length_prefix_rejected_without_allocating(self):
        with _SocketPair() as (left, right):
            left.sendall(struct.pack(">I", protocol.MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError):
                recv_frame(right)

    def test_oversized_send_rejected(self):
        class _NeverUsed:
            def sendall(self, data):  # pragma: no cover - must not be reached
                raise AssertionError("oversized frame reached the socket")

        with pytest.raises(ProtocolError):
            send_frame(_NeverUsed(), b"x" * (protocol.MAX_FRAME_BYTES + 1))

    def test_large_frame_crosses_segment_boundaries(self):
        # big enough that recv() returns it in several chunks
        body = b"z" * (4 * 1024 * 1024)
        with _SocketPair() as (left, right):
            writer = threading.Thread(target=send_frame, args=(left, body))
            writer.start()
            assert recv_frame(right) == body
            writer.join()
