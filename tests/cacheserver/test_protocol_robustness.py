"""Hostile-wire robustness: garbage in, clean close or ERROR out — never a hang.

The server must survive any byte sequence a broken (or malicious) client can
produce: truncated frames, oversized length prefixes, short message bodies,
unknown verbs, and plain fuzz.  The client must survive the mirror image — a
server that dies mid-response, answers with garbage, or closes early — by
degrading to misses, never by hanging or corrupting later traffic.
"""

import random
import socket
import struct
import threading

import pytest

from repro.cachestore import MISSING
from repro.cacheserver import AsyncCacheServer, CacheServer, RemoteBackend, server_ping
from repro.cacheserver import protocol
from repro.cacheserver.pipeline import PipelinedConnection

# short socket timeouts keep a would-be hang visible as a fast test failure
_TIMEOUT = 5.0


# every hostile-client case runs against both transports: the asyncio server
# must shrug off exactly the byte sequences the threaded one does
@pytest.fixture(params=["threaded", "async"])
def server(request):
    server_class = CacheServer if request.param == "threaded" else AsyncCacheServer
    with server_class() as running:
        yield running


def _connect(server) -> socket.socket:
    sock = socket.create_connection(server.address, timeout=_TIMEOUT)
    return sock


class TestServerAgainstHostileClients:
    def test_oversized_length_prefix_drops_the_connection(self, server):
        with _connect(server) as sock:
            sock.sendall(b"\xff\xff\xff\xff")  # a 4 GiB frame announcement
            assert sock.recv(1024) == b""  # server closed on us
        assert server_ping(server.url)  # and is still healthy

    def test_truncated_frame_then_eof_is_quiet(self, server):
        with _connect(server) as sock:
            sock.sendall(struct.pack(">I", 100) + b"only-part-of-it")
        assert server_ping(server.url)

    def test_message_body_shorter_than_a_request_id(self, server):
        # a 2-byte body cannot carry the 4-byte id; the server must treat the
        # frame as unparseable and close, not index past the buffer
        with _connect(server) as sock:
            protocol.send_frame(sock, b"\x01\x00")
            assert sock.recv(1024) == b""
        assert server_ping(server.url)

    def test_unknown_verb_is_an_error_response_not_a_close(self, server):
        with _connect(server) as sock:
            protocol.send_message(sock, 3, bytes((250, protocol.REGION_FITS)))
            request_id, body = protocol.recv_message(sock)
            status, payload = protocol.decode_response(body)
            assert request_id == 3 and status == protocol.ERROR
            assert b"verb" in payload
            # the conversation continues after the error
            protocol.send_message(
                sock, 4, protocol.encode_request(protocol.PING, protocol.REGION_ALL)
            )
            assert protocol.recv_message(sock)[0] == 4

    def test_mget_with_lying_count_is_rejected_cleanly(self, server):
        with _connect(server) as sock:
            # announce 1000 digests, send 2
            body = bytes((protocol.MGET, protocol.REGION_FITS))
            body += struct.pack(">I", 1000) + b"x" * 32
            protocol.send_message(sock, 1, body)
            _, response = protocol.recv_message(sock)
            assert protocol.decode_response(response)[0] == protocol.ERROR
        assert server_ping(server.url)

    def test_zero_length_frame_is_rejected_without_crash(self, server):
        with _connect(server) as sock:
            protocol.send_frame(sock, b"")
            assert sock.recv(1024) == b""
        assert server_ping(server.url)

    def test_seeded_fuzz_never_wedges_the_server(self, server):
        # 50 connections each spraying random bytes; after every one of them
        # the server must still answer a well-formed PING promptly
        rng = random.Random(0xC0FFEE)
        for round_number in range(50):
            with _connect(server) as sock:
                blob = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 200)))
                if rng.random() < 0.5:
                    # half the rounds frame the garbage properly, exercising
                    # the parser; half spray raw bytes at the framing layer
                    try:
                        protocol.send_frame(sock, blob)
                    except protocol.ProtocolError:  # pragma: no cover
                        continue
                else:
                    sock.sendall(blob)
                # a short drain window: the server either answers/closes fast
                # or is (legitimately) waiting for the rest of a partial frame
                sock.settimeout(0.2)
                try:
                    while sock.recv(4096):
                        pass  # drain whatever it answers until close
                except (TimeoutError, OSError):
                    pass
            assert server_ping(server.url), f"server wedged after round {round_number}"

    def test_fuzzed_valid_headers_with_garbage_tails(self, server):
        # frames that *start* like real requests but carry malformed tails
        rng = random.Random(42)
        verbs = [protocol.GET, protocol.PUT, protocol.MGET, protocol.LEN]
        for _ in range(40):
            with _connect(server) as sock:
                verb = rng.choice(verbs)
                tail = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 40)))
                protocol.send_message(
                    sock, 9, bytes((verb, protocol.REGION_FITS)) + tail
                )
                sock.settimeout(_TIMEOUT)
                answer = protocol.recv_message(sock)
                if answer is not None:
                    # whatever it was, the answer is a well-formed response
                    status, _ = protocol.decode_response(answer[1])
                    assert status in (
                        protocol.OK,
                        protocol.HIT,
                        protocol.MISS,
                        protocol.ERROR,
                    )
        assert server_ping(server.url)

    def test_server_survives_concurrent_garbage_and_real_traffic(self, server):
        stop = threading.Event()
        errors: list[Exception] = []

        def spray() -> None:
            rng = random.Random(7)
            try:
                while not stop.is_set():
                    with _connect(server) as sock:
                        sock.sendall(bytes(rng.randrange(256) for _ in range(64)))
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        attacker = threading.Thread(target=spray, daemon=True)
        attacker.start()
        try:
            backend = RemoteBackend(server.url, namespace=b"fuzz-bystander")
            for index in range(50):
                backend.put(("k", index), index)
                assert backend.get(("k", index)) == index
            assert backend.connection_failures == 0  # garbage hurt nobody else
            backend.close()
        finally:
            stop.set()
            attacker.join(timeout=10)
        assert not errors


class _EvilServer:
    """A one-connection server that answers every frame with scripted bytes."""

    def __init__(self, raw_response: bytes, close_after: bool = True) -> None:
        self._raw = raw_response
        self._close_after = close_after
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.address = self._listener.getsockname()
        self.url = f"127.0.0.1:{self.address[1]}"
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        try:
            conn, _ = self._listener.accept()
            with conn:
                conn.settimeout(_TIMEOUT)
                try:
                    protocol.recv_frame(conn)  # read one request, then misbehave
                except protocol.ProtocolError:
                    pass
                conn.sendall(self._raw)
                if not self._close_after:
                    try:
                        while protocol.recv_frame(conn) is not None:
                            conn.sendall(self._raw)
                    except (protocol.ProtocolError, OSError, TimeoutError):
                        pass
        except OSError:  # pragma: no cover - listener closed
            pass

    def close(self) -> None:
        self._listener.close()


class TestClientAgainstHostileServers:
    def test_response_without_request_id_fails_the_request_not_the_process(self):
        # a 2-byte frame is too short to carry the id; the reader must fail
        # the connection (and its pending futures) promptly — the degrade
        # decision belongs to the ShardClient layer above, which catches this
        evil = _EvilServer(struct.pack(">I", 2) + b"ok")
        try:
            connection = PipelinedConnection(evil.address, timeout=_TIMEOUT)
            with pytest.raises(ConnectionError):
                connection.request(
                    protocol.encode_request(protocol.PING, protocol.REGION_ALL)
                )
            assert not connection.alive
            connection.close()
        finally:
            evil.close()

    def test_server_closing_mid_frame_fails_pending_requests(self):
        evil = _EvilServer(struct.pack(">I", 100) + b"half")  # announces 100, sends 4
        try:
            connection = PipelinedConnection(evil.address, timeout=_TIMEOUT)
            with pytest.raises(ConnectionError):
                connection.request(
                    protocol.encode_request(protocol.PING, protocol.REGION_ALL)
                )
            assert not connection.alive
            connection.close()
        finally:
            evil.close()

    def test_backend_degrades_to_miss_on_garbage_responses(self):
        evil = _EvilServer(b"\x00" * 16, close_after=False)
        try:
            backend = RemoteBackend(evil.url)
            assert backend.get("k") is MISSING  # garbage → degraded, not raised
            assert backend.connection_failures >= 1
            backend.close()
        finally:
            evil.close()

    def test_unpack_multi_rejects_truncations_and_trailing_bytes(self):
        value = b"payload"
        good = protocol.pack_multi([value, None])
        assert protocol.unpack_multi(good, 2) == [value, None]
        with pytest.raises(protocol.ProtocolError):
            protocol.unpack_multi(good[:-1], 2)  # truncated inside the value
        with pytest.raises(protocol.ProtocolError):
            protocol.unpack_multi(good + b"x", 2)  # trailing bytes
        with pytest.raises(protocol.ProtocolError):
            protocol.unpack_multi(good, 3)  # count lies high
        with pytest.raises(protocol.ProtocolError):
            protocol.unpack_multi(bytes((9,)), 1)  # unknown slot status

    def test_seeded_fuzz_of_unpack_multi_never_hangs_or_crashes(self):
        rng = random.Random(1234)
        for _ in range(500):
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 64)))
            try:
                values = protocol.unpack_multi(blob, rng.randrange(1, 8))
            except protocol.ProtocolError:
                continue
            assert all(value is None or isinstance(value, bytes) for value in values)
