"""Elastic ring membership: JOIN/LEAVE/TOPOLOGY, warm-up, epoch propagation.

The acceptance invariant stays what it always was — topology never shows up
in results: rankings are byte-identical whether the fleet is static, grows a
member mid-search, or loses one.  On top of that this file pins the elastic
mechanics: a joining shard warms itself from its ring predecessors
(``HANDOFF``), every response carries the topology epoch once one is
configured, and a running fabric follows the newest epoch by refreshing its
ring incrementally — reusing surviving shard clients and moving only the
changed endpoints' arcs.
"""

import os
import threading
import time

import pytest

from repro.cachestore import MISSING
from repro.cacheserver import (
    AsyncCacheServer,
    CacheServer,
    HashRing,
    ShardedRemoteBackend,
    fleet_join,
    fleet_leave,
    server_stats,
    server_topology,
)
from repro.cacheserver import protocol
from repro.core import Charles, CharlesConfig
from repro.exceptions import CacheStoreError


def _fabric(urls, **kwargs) -> ShardedRemoteBackend:
    kwargs.setdefault("namespace", os.urandom(8))
    return ShardedRemoteBackend(",".join(urls), **kwargs)


def _ranking(result):
    return [
        (
            scored.summary.describe(),
            scored.score,
            scored.condition_attributes,
            scored.transformation_attributes,
            scored.n_partitions,
        )
        for scored in result.summaries
    ]


def _summarize(pair, config):
    return Charles(config).summarize_pair(
        pair,
        "bonus",
        condition_attributes=["edu", "exp"],
        transformation_attributes=["bonus", "salary"],
    )


class TestRingIncrementalUpdates:
    def test_add_matches_a_fresh_ring(self):
        urls = ["h1:1", "h2:2", "h3:3"]
        grown = HashRing(urls[:2])
        grown.add(urls[2])
        fresh = HashRing(urls)
        assert grown.endpoints == fresh.endpoints
        assert grown._points == fresh._points
        assert grown._owners == fresh._owners

    def test_remove_matches_a_fresh_ring(self):
        urls = ["h1:1", "h2:2", "h3:3"]
        shrunk = HashRing(urls)
        shrunk.remove("h2:2")
        fresh = HashRing(["h1:1", "h3:3"])
        assert shrunk.endpoints == fresh.endpoints
        assert shrunk._points == fresh._points
        assert shrunk._owners == fresh._owners

    def test_join_moves_only_keys_the_newcomer_owns(self):
        ring = HashRing(["h1:1", "h2:2", "h3:3"])
        digests = [os.urandom(16) for _ in range(500)]
        before = {d: ring.endpoints[ring.owner(d)] for d in digests}
        ring.add("h4:4")
        moved = 0
        for digest in digests:
            owner = ring.endpoints[ring.owner(digest)]
            if owner != before[digest]:
                assert owner == "h4:4"  # movement only *onto* the newcomer
                moved += 1
        assert 0 < moved < len(digests) // 2  # ~1/4 of the space, not a reshuffle

    def test_leave_moves_keys_onto_the_old_first_successor(self):
        # the minimal-movement property replication leans on: a departed
        # key's new owner is exactly the failover rung readers already tried
        ring = HashRing(["h1:1", "h2:2", "h3:3"])
        digests = [os.urandom(16) for _ in range(500)]
        expectations = {}
        for digest in digests:
            preference = ring.preference(digest, 2)
            expectations[digest] = [ring.endpoints[i] for i in preference]
        ring.remove("h2:2")
        for digest in digests:
            owner_before, successor = expectations[digest]
            owner_after = ring.endpoints[ring.owner(digest)]
            if owner_before == "h2:2":
                assert owner_after == successor
            else:
                assert owner_after == owner_before

    def test_guards(self):
        ring = HashRing(["h1:1"])
        with pytest.raises(CacheStoreError):
            ring.add("h1:1")
        with pytest.raises(CacheStoreError):
            ring.remove("h9:9")
        with pytest.raises(CacheStoreError):
            ring.remove("h1:1")  # never empty the ring


class TestEpochOnTheWire:
    def test_attach_and_decode_roundtrip(self):
        body = protocol.encode_response(protocol.HIT, b"value")
        assert protocol.attach_epoch(body, 0) == body  # epoch 0: wire unchanged
        stamped = protocol.attach_epoch(body, 7)
        assert stamped != body
        status, payload, epoch = protocol.decode_response_full(stamped)
        assert (status, payload, epoch) == (protocol.HIT, b"value", 7)
        # epoch-unaware readers see the same response, flag stripped
        assert protocol.decode_response(stamped) == (protocol.HIT, b"value")

    def test_truncated_epoch_header_is_a_protocol_error(self):
        stamped = protocol.attach_epoch(protocol.encode_response(protocol.OK), 3)
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_response_full(stamped[:3])

    def test_entry_packing_roundtrip_and_truncation(self):
        entries = [
            (os.urandom(protocol.DIGEST_SIZE), 1.5, b"abc"),
            (os.urandom(protocol.DIGEST_SIZE), 0.0, b""),
        ]
        packed = protocol.pack_entries(entries)
        assert protocol.unpack_entries(packed) == entries
        with pytest.raises(protocol.ProtocolError):
            protocol.unpack_entries(packed[:-1])
        with pytest.raises(protocol.ProtocolError):
            protocol.unpack_entries(packed + b"x")


@pytest.fixture()
def pair():
    with CacheServer() as first, AsyncCacheServer() as second:
        yield first, second


class TestMembershipVerbs:
    def test_join_broadcast_reaches_both_transports(self, pair):
        first, second = pair
        outcome = fleet_join([first.url], second.url)
        assert outcome["epoch"] == 1
        assert outcome["endpoints"] == [first.url, second.url]
        for server in pair:
            view = server_topology(server.url)
            assert view["epoch"] == 1
            assert view["endpoints"] == [first.url, second.url]

    def test_stale_epoch_is_ignored(self, pair):
        first, second = pair
        fleet_join([first.url], second.url)  # epoch 1
        fleet_join([first.url], second.url)  # epoch 2 (idempotent re-run)
        assert server_topology(first.url)["epoch"] == 2
        # a replayed older broadcast must not win
        import json as json_module
        import socket as socket_module

        stale = json_module.dumps(
            {"epoch": 1, "endpoints": [first.url], "subject": first.url}
        ).encode("utf-8")
        with socket_module.create_connection(first.address, timeout=5) as sock:
            protocol.send_message(
                sock,
                0,
                protocol.encode_request(
                    protocol.JOIN, protocol.REGION_ALL, payload=stale
                ),
            )
            _, body = protocol.recv_message(sock)
        status, payload, epoch = protocol.decode_response_full(body)
        assert status == protocol.OK and epoch == 2
        assert b'"adopted": false' in payload
        assert server_topology(first.url)["epoch"] == 2

    def test_malformed_membership_payloads_are_errors(self, pair):
        first, _ = pair
        import socket as socket_module

        for payload in (b"not json", b"[]", b'{"epoch": 0, "endpoints": ["a:1"], "subject": "a:1"}'):
            with socket_module.create_connection(first.address, timeout=5) as sock:
                protocol.send_message(
                    sock,
                    0,
                    protocol.encode_request(
                        protocol.JOIN, protocol.REGION_ALL, payload=payload
                    ),
                )
                _, body = protocol.recv_message(sock)
            assert protocol.decode_response(body)[0] == protocol.ERROR

    def test_fleet_leave_guards(self, pair):
        first, second = pair
        with pytest.raises(CacheStoreError):
            fleet_leave([first.url], first.url)  # never empty the fleet
        with pytest.raises(CacheStoreError):
            fleet_leave([first.url], second.url)  # not a member


class TestJoinWarmsFromPredecessors:
    def test_newcomer_holds_exactly_the_entries_it_now_owns(self):
        with CacheServer() as a, CacheServer() as b, AsyncCacheServer() as c:
            fabric = _fabric([a.url, b.url])
            for index in range(150):
                fabric.put(("k", index), index, cost_hint=0.5)
            outcome = fleet_join([a.url, b.url], c.url)
            ring = HashRing((a.url, b.url, c.url))
            owned = 0
            for donor in (a, b):
                for region in donor._regions.values():
                    owned += sum(
                        1 for digest in region._entries if ring.owner(digest) == 2
                    )
            assert outcome["warmed"] == owned > 0
            assert c.warmed_entries == owned
            # warmed entries answer reads directly off the newcomer
            entries = server_stats(c.url)["regions"]["fits"]["entries"]
            assert entries == owned
            fabric.close()

    def test_join_never_loses_an_entry(self):
        with CacheServer() as a, CacheServer() as b, AsyncCacheServer() as c:
            fabric = _fabric([a.url, b.url], replication=2)
            for index in range(100):
                fabric.put(("k", index), index * 3, cost_hint=0.5)
            fleet_join([a.url, b.url], c.url)
            # the fabric notices the epoch on its next operations and
            # re-routes under the 3-member ring; every key still resolves
            values = [fabric.get(("k", index)) for index in range(100)]
            assert values == [index * 3 for index in range(100)]
            assert len(fabric.endpoints) == 3
            assert fabric._seen_epoch == 1
            fabric.close()

    def test_leave_fails_over_like_a_shard_death(self):
        with CacheServer() as a, CacheServer() as b, CacheServer() as c:
            urls = [a.url, b.url, c.url]
            fleet_join(urls[:2], c.url)  # establish an elastic 3-fleet
            fabric = _fabric(urls, replication=2)
            for index in range(100):
                fabric.put(("k", index), index, cost_hint=0.5)
            fleet_leave(urls, b.url)
            values = [fabric.get(("k", index)) for index in range(100)]
            # replication 2 under the write-time topology means the departed
            # member's keys live on their old first successor — the new owner
            assert values == list(range(100))
            assert len(fabric.endpoints) == 2
            assert b.url not in fabric.endpoints
            fabric.close()


class TestTopologyChangesNeverChangeResults:
    def test_rankings_survive_live_join_and_leave_mid_search(self, fig1_pair):
        memory = _ranking(_summarize(fig1_pair, CharlesConfig()))
        with CacheServer() as a, CacheServer() as b, AsyncCacheServer() as c:
            config = CharlesConfig(
                cache_backend="remote",
                cache_url=f"{a.url},{b.url}",
                cache_replication=2,
            )
            churn_done = threading.Event()
            errors: list[Exception] = []

            def churn() -> None:
                # reshape the fleet while the search below is running: grow
                # by one member, then shrink by one — both broadcasts land
                # mid-run, and running clients refresh off the epoch bump
                try:
                    time.sleep(0.05)
                    fleet_join([a.url, b.url], c.url)
                    time.sleep(0.05)
                    fleet_leave([a.url, b.url, c.url], b.url)
                except Exception as error:  # pragma: no cover - reporting
                    errors.append(error)
                finally:
                    churn_done.set()

            churner = threading.Thread(target=churn, daemon=True)
            churner.start()
            try:
                live = _summarize(fig1_pair, config)
            finally:
                churner.join(timeout=30)
            assert not errors
            assert churn_done.is_set()
            assert _ranking(live) == memory
            # and a fresh run against the settled (joined+left) fleet agrees
            settled = CharlesConfig(
                cache_backend="remote",
                cache_url=f"{a.url},{c.url}",
                cache_replication=2,
            )
            assert _ranking(_summarize(fig1_pair, settled)) == memory

    def test_rankings_identical_threaded_vs_asyncio_server(self, fig1_pair):
        memory = _ranking(_summarize(fig1_pair, CharlesConfig()))
        for server_class in (CacheServer, AsyncCacheServer):
            with server_class() as server:
                config = CharlesConfig(
                    cache_backend="remote", cache_url=server.url
                )
                cold = _summarize(fig1_pair, config)
                warm = _summarize(fig1_pair, config)
                assert _ranking(cold) == memory
                assert _ranking(warm) == memory


class TestFabricFollowsEpochs:
    def test_clients_and_counters_survive_a_refresh(self):
        with CacheServer() as a, CacheServer() as b, CacheServer() as c:
            fabric = _fabric([a.url, b.url])
            for index in range(20):
                fabric.put(("k", index), index)
            survivors = {client.url: client for client in fabric._clients}
            trips_before = fabric.round_trips
            fleet_join([a.url, b.url], c.url)
            # the first operation's response carries the new epoch; the next
            # operation sees it and refreshes the ring
            assert fabric.get(("k", 0)) == 0
            assert fabric.get(("k", 1)) in (1, MISSING)
            assert len(fabric.endpoints) == 3
            for client in fabric._clients:
                if client.url in survivors:
                    assert client is survivors[client.url]  # reused, not redialed
            assert fabric.round_trips >= trips_before
            fabric.close()

    def test_replication_expands_with_the_fleet(self):
        with CacheServer() as a, CacheServer() as b:
            fabric = _fabric([a.url], replication=2)
            assert fabric.replication == 1  # clamped to the fleet size
            fabric.put(("k", 1), 1)
            fleet_join([a.url], b.url)
            fabric.get(("k", 1))  # primes the epoch off this response
            fabric.get(("k", 1))  # sees it and refreshes
            assert len(fabric.endpoints) == 2
            assert fabric.replication == 2  # the requested factor, now usable
            fabric.close()
