"""Patch entries cross the wire like any memo value: opaque and namespaced.

The cache server never unpickles what it stores, so a
:class:`~repro.search.maintenance.PartitionPatchRecord` — numpy masks,
conditions, certificate and all — must round-trip bit-faithfully through a
:class:`~repro.cacheserver.client.RemoteBackend`, and the client-side
fingerprint namespacing must isolate configurations from each other exactly
as it does for ordinary fit/partition entries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cachestore import MISSING
from repro.cacheserver import CacheServer, RemoteBackend
from repro.cacheserver import protocol
from repro.core import CharlesConfig
from repro.core.partitioning import discover_partitions
from repro.relational.snapshot import SnapshotPair
from repro.relational.table import Table
from repro.search.maintenance import (
    PartitionCertificate,
    PartitionIndexEntry,
    PartitionPatchRecord,
)

_PATCH_KEY = ("partition-patch", "bonus", ("edu",), ("bonus",), 2, 1.0, b"base", b"delta")


@pytest.fixture(scope="module")
def server():
    with CacheServer() as running:
        yield running


@pytest.fixture(scope="module")
def record() -> PartitionPatchRecord:
    rows = [
        {"id": "a", "edu": "MS", "bonus": 100.0},
        {"id": "b", "edu": "MS", "bonus": 200.0},
        {"id": "c", "edu": "BS", "bonus": 300.0},
        {"id": "d", "edu": "BS", "bonus": 400.0},
    ]
    source = Table.from_rows(rows, primary_key="id")
    target = source.with_column("bonus", [110.0, 220.0, 300.0, 400.0])
    pair = SnapshotPair.align(source, target, key="id")
    partitions = discover_partitions(pair, "bonus", ("edu",), ("bonus",), 2, CharlesConfig())
    entry = PartitionIndexEntry(
        partitions=tuple(partitions),
        certificate=PartitionCertificate(
            changed_digest=b"c" * 16,
            input_token=b"t" * 16,
            labels=np.array([0, 0], dtype=np.intp),
        ),
    )
    return PartitionPatchRecord(b"base-digest-0123", b"delta-digest-456", entry, "patched")


class TestPatchEntriesOverTheWire:
    def test_record_roundtrips_between_clients(self, server, record):
        namespace = CharlesConfig().cache_fingerprint()
        writer = RemoteBackend(server.url, protocol.REGION_PARTITIONS, namespace=namespace)
        writer.put(_PATCH_KEY, record, cost_hint=0.02)
        # a second fleet member with the same configuration sees the patch
        reader = RemoteBackend(server.url, protocol.REGION_PARTITIONS, namespace=namespace)
        loaded = reader.get(_PATCH_KEY)
        assert isinstance(loaded, PartitionPatchRecord)
        assert loaded.base_digest == record.base_digest
        assert loaded.delta_digest == record.delta_digest
        assert np.array_equal(
            loaded.entry.certificate.labels, record.entry.certificate.labels
        )
        for ours, theirs in zip(loaded.entry.partitions, record.entry.partitions):
            assert ours.condition.descriptors == theirs.condition.descriptors
            assert np.array_equal(ours.mask, theirs.mask)
        writer.close()
        reader.close()

    def test_records_are_fingerprint_namespaced(self, server, record):
        """Two configs sharing one server read disjoint patch namespaces."""
        config_a = CharlesConfig(seed=100)
        config_b = CharlesConfig(seed=101)
        writer = RemoteBackend(
            server.url, protocol.REGION_PARTITIONS, namespace=config_a.cache_fingerprint()
        )
        writer.put(_PATCH_KEY, record)
        stranger = RemoteBackend(
            server.url, protocol.REGION_PARTITIONS, namespace=config_b.cache_fingerprint()
        )
        assert stranger.get(_PATCH_KEY) is MISSING
        peer = RemoteBackend(
            server.url, protocol.REGION_PARTITIONS, namespace=config_a.cache_fingerprint()
        )
        assert isinstance(peer.get(_PATCH_KEY), PartitionPatchRecord)
        for backend in (writer, stranger, peer):
            backend.close()

    def test_regions_keep_patches_apart_from_fits(self, server, record):
        namespace = b"region-isolation"
        partitions_side = RemoteBackend(
            server.url, protocol.REGION_PARTITIONS, namespace=namespace
        )
        fits_side = RemoteBackend(server.url, protocol.REGION_FITS, namespace=namespace)
        partitions_side.put(_PATCH_KEY, record)
        assert fits_side.get(_PATCH_KEY) is MISSING
        partitions_side.close()
        fits_side.close()
