"""Differential testing: the asyncio server is byte-identical to the threaded one.

Every client in the fleet was written against the threaded ``CacheServer``;
``AsyncCacheServer`` may only replace it (and become the ``charles
cache-server`` default) if no client can tell them apart.  The core of this
file drives both transports with the same raw frames and compares responses
*byte for byte* — not "equivalent", identical.  Payloads that legitimately
differ per process (stats, metrics, topology urls) are compared structurally
instead, and a concurrency test checks the one thing the threaded server
made easy and the loop must not lose: many simultaneous connections making
progress together.
"""

import pickle
import socket
import threading

import pytest

from repro.cachestore import MISSING
from repro.cacheserver import (
    AsyncCacheServer,
    CacheServer,
    RemoteBackend,
    server_metrics,
    server_ping,
    server_stats,
    server_topology,
)
from repro.cacheserver import protocol

_TIMEOUT = 5.0


@pytest.fixture()
def transports():
    """One server of each transport, identically configured."""
    with CacheServer(capacity=64) as threaded, AsyncCacheServer(capacity=64) as alooped:
        yield threaded, alooped


def _roundtrip(server, body: bytes, request_id: int = 7) -> tuple[int, bytes]:
    """One raw framed request against a server; returns (request_id, response)."""
    with socket.create_connection(server.address, timeout=_TIMEOUT) as sock:
        protocol.send_message(sock, request_id, body)
        return protocol.recv_message(sock)


def _digest(tag: bytes) -> bytes:
    return tag.ljust(protocol.DIGEST_SIZE, b"\x00")


class TestByteIdenticalResponses:
    """The same request frame must produce the same response frame."""

    @pytest.mark.parametrize(
        "body",
        [
            protocol.encode_request(protocol.PING, protocol.REGION_ALL),
            protocol.encode_request(protocol.LEN, protocol.REGION_ALL),
            protocol.encode_request(protocol.LEN, protocol.REGION_FITS),
            protocol.encode_request(
                protocol.GET, protocol.REGION_FITS, digest=_digest(b"absent")
            ),
            protocol.encode_request(
                protocol.MGET,
                protocol.REGION_PARTITIONS,
                digests=(_digest(b"a"), _digest(b"b")),
            ),
            protocol.encode_request(protocol.CLEAR, protocol.REGION_ALL),
            bytes((250, protocol.REGION_FITS)),  # unknown verb
            bytes((protocol.GET, 99)) + _digest(b"x"),  # unknown region
            bytes((protocol.GET, protocol.REGION_FITS)) + b"short",  # bad digest
        ],
    )
    def test_same_frame_same_bytes(self, transports, body):
        threaded, alooped = transports
        assert _roundtrip(threaded, body) == _roundtrip(alooped, body)

    def test_put_then_get_and_mget_are_identical(self, transports):
        digest = _digest(b"key-1")
        put = protocol.encode_request(
            protocol.PUT,
            protocol.REGION_FITS,
            digest=digest,
            cost=1.25,
            payload=b"stored-bytes",
        )
        get = protocol.encode_request(protocol.GET, protocol.REGION_FITS, digest=digest)
        mget = protocol.encode_request(
            protocol.MGET, protocol.REGION_FITS, digests=(digest, _digest(b"miss"))
        )
        answers = []
        for server in transports:
            answers.append(
                (
                    _roundtrip(server, put),
                    _roundtrip(server, get),
                    _roundtrip(server, mget),
                    _roundtrip(server, protocol.encode_request(protocol.LEN, protocol.REGION_ALL)),
                )
            )
        assert answers[0] == answers[1]
        status, payload = protocol.decode_response(answers[0][1][1])
        assert (status, payload) == (protocol.HIT, b"stored-bytes")

    def test_pipelined_burst_is_answered_in_order_with_matching_ids(self, transports):
        # queue a burst of frames before reading anything back — the
        # coalesced reply must echo every id, in order, on both transports
        frames = []
        for index in range(32):
            body = protocol.encode_request(
                protocol.PUT,
                protocol.REGION_FITS,
                digest=_digest(b"burst-%d" % index),
                payload=b"v",
            )
            frames.append(protocol.frame_message(index, body))
        burst = b"".join(frames)
        for server in transports:
            with socket.create_connection(server.address, timeout=_TIMEOUT) as sock:
                sock.sendall(burst)
                seen = [protocol.recv_message(sock)[0] for _ in range(32)]
            assert seen == list(range(32))


class TestStructuralParity:
    """Payloads that carry per-process facts compare by structure."""

    def test_stats_shape_and_counters_match(self, transports):
        shapes = []
        for server in transports:
            backend = RemoteBackend(server.url, namespace=b"parity")
            backend.put("k", 41, cost_hint=0.5)
            assert backend.get("k") == 41
            assert backend.get("absent") is MISSING
            backend.close()
            stats = server_stats(server.url)
            regions = {
                name: (region["entries"], region["hits"], region["misses"])
                for name, region in stats["regions"].items()
            }
            shapes.append((sorted(stats), sorted(stats["server"]), regions))
        assert shapes[0] == shapes[1]

    def test_metrics_expose_the_same_series(self, transports):
        names = []
        for server in transports:
            server_ping(server.url)
            exposition = server_metrics(server.url)
            names.append(
                sorted(
                    {
                        line.split("{")[0].split(" ")[0]
                        for line in exposition.splitlines()
                        if line and not line.startswith("#")
                    }
                )
            )
        assert names[0] == names[1]

    def test_topology_views_match_before_any_membership(self, transports):
        views = [server_topology(server.url) for server in transports]
        assert all(view["epoch"] == 0 and view["endpoints"] == [] for view in views)

    def test_trace_spans_record_identically(self, transports):
        from repro.cacheserver import server_trace
        from repro.obs.trace import TRACE_ID_BYTES, SPAN_ID_BYTES

        trace_context = b"\x11" * TRACE_ID_BYTES + b"\x00" * SPAN_ID_BYTES
        body = protocol.encode_request(
            protocol.GET,
            protocol.REGION_FITS,
            digest=_digest(b"traced"),
            trace=trace_context,
        )
        recorded = []
        for server in transports:
            _roundtrip(server, body)
            spans = server_trace(server.url, trace_id=("11" * TRACE_ID_BYTES))
            recorded.append(
                [(span["name"], span["outcome"], span["attributes"]["region"]) for span in spans]
            )
        assert recorded[0] == recorded[1] == [("server.get", "ok", "fits")]


class TestAsyncServerUnderConcurrency:
    def test_many_connections_make_progress_together(self):
        # the reason the asyncio transport exists: 64 concurrent client
        # connections, each doing real read/write traffic, on one loop
        with AsyncCacheServer() as server:
            errors: list[Exception] = []

            def worker(worker_id: int) -> None:
                try:
                    backend = RemoteBackend(
                        server.url, namespace=b"w%d" % worker_id
                    )
                    for index in range(25):
                        backend.put(("k", index), (worker_id, index))
                        assert backend.get(("k", index)) == (worker_id, index)
                    backend.close()
                except Exception as error:  # pragma: no cover - reporting
                    errors.append(error)

            threads = [
                threading.Thread(target=worker, args=(i,), daemon=True)
                for i in range(64)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors
            assert not any(thread.is_alive() for thread in threads)
            requests = server_stats(server.url)["server"]["requests"]
            assert requests >= 64 * 50

    def test_context_manager_lifecycle_is_idempotent(self):
        server = AsyncCacheServer()
        with server:
            assert server_ping(server.url)
        server.shutdown()  # second shutdown is a no-op
        with pytest.raises(Exception):
            server_ping(server.url)

    def test_url_is_valid_before_start(self):
        server = AsyncCacheServer()
        host, port = server.address
        assert host == "127.0.0.1" and port > 0
        assert server.url == f"{host}:{port}"
        server.shutdown()  # never started: just releases the socket


class TestCliDefaultsToAsync:
    def test_cache_server_parser_defaults_to_the_asyncio_transport(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert parser.parse_args(["cache-server"]).transport == "async"
        assert parser.parse_args(["cache-server", "--threaded"]).transport == "threaded"
        assert parser.parse_args(["cache-server", "--async"]).transport == "async"
