"""Conformance tests every cache backend must pass, plus backend-specific ones."""

import multiprocessing

import pytest

from repro.cachestore import (
    BACKEND_CHOICES,
    MISSING,
    BackendCounters,
    DiskBackend,
    InProcessBackend,
    SharedBackend,
    TieredBackend,
    build_search_backends,
    create_shared_backends,
    key_digest,
)
from repro.exceptions import CacheStoreError, ConfigurationError


@pytest.fixture(scope="module")
def manager():
    with multiprocessing.Manager() as manager:
        yield manager


@pytest.fixture(
    params=["memory", "disk", "tiered-disk", "shared"],
)
def backend(request, tmp_path, manager):
    if request.param == "memory":
        yield InProcessBackend()
    elif request.param == "disk":
        yield DiskBackend(tmp_path / "cache.sqlite")
    elif request.param == "tiered-disk":
        yield TieredBackend(InProcessBackend(), DiskBackend(tmp_path / "cache.sqlite"))
    else:
        yield SharedBackend(manager.dict())


class TestBackendConformance:
    def test_get_miss_then_put_then_hit(self, backend):
        key = ("fit", "bonus", ("salary",), b"token")
        assert backend.get(key) is MISSING
        backend.put(key, {"value": 42})
        assert backend.get(key) == {"value": 42}
        counters = backend.counters()
        assert counters.misses >= 1 and counters.hits >= 1

    def test_none_is_a_cacheable_value(self, backend):
        backend.put("none-key", None)
        assert backend.get("none-key") is None

    def test_len_and_clear_preserve_counters(self, backend):
        backend.put("a", 1)
        backend.put("b", 2)
        assert len(backend) >= 2
        before = backend.counters()
        backend.clear()
        assert len(backend) == 0
        assert backend.get("a") is MISSING
        # a tiered store counts the miss once per layer, flat stores once
        assert backend.counters().misses > before.misses

    def test_overwrite_keeps_single_entry(self, backend):
        backend.put("k", 1)
        backend.put("k", 2)
        assert backend.get("k") == 2

    def test_breakdown_sums_to_counters(self, backend):
        backend.get("absent")
        backend.put("k", 1)
        backend.get("k")
        total = BackendCounters()
        for counters in backend.breakdown().values():
            total = total + counters
        assert total == backend.counters()


class TestInProcessBackend:
    def test_lru_eviction_order(self):
        backend = InProcessBackend(capacity=2)
        backend.put("a", 1)
        backend.put("b", 2)
        backend.get("a")  # refresh: "b" is now least recently used
        backend.put("c", 3)
        assert backend.get("b") is MISSING
        assert backend.get("a") == 1 and backend.get("c") == 3
        assert backend.evictions == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            InProcessBackend(capacity=0)

    def test_not_shareable(self):
        with pytest.raises(CacheStoreError):
            InProcessBackend().handle()


class TestSharedBackend:
    def test_attached_backend_sees_entries(self, manager):
        first = SharedBackend(manager.dict())
        first.put(("partition", 1), [1, 2, 3])
        second = first.handle().attach()
        assert second.get(("partition", 1)) == [1, 2, 3]
        # counters are process/instance-local
        assert second.counters().hits == 1 and first.counters().hits == 0

    def test_full_store_evicts_oldest_insert(self, manager):
        backend = SharedBackend(manager.dict(), capacity=2)
        backend.put("a", 1)
        backend.put("b", 2)
        backend.put("c", 3)  # full: "a" (the oldest insert) makes room
        assert backend.get("a") is MISSING
        assert backend.get("b") == 2 and backend.get("c") == 3
        assert backend.evictions == 1
        assert len(backend) == 2

    def test_overwrite_of_a_full_store_never_evicts(self, manager):
        backend = SharedBackend(manager.dict(), capacity=1)
        backend.put("a", 1)
        backend.put("a", 2)  # replaces in place; nothing needs to go
        assert backend.get("a") == 2
        assert backend.evictions == 0

    def test_full_store_keeps_admitting_new_entries(self, manager):
        # a long-lived session must keep learning once the store fills up —
        # the newest entry is always admitted, at the cost of the oldest
        backend = SharedBackend(manager.dict(), capacity=2)
        for index in range(5):
            backend.put(f"k{index}", index)
        assert backend.get("k4") == 4
        assert backend.get("k0") is MISSING
        assert backend.evictions == 3

    def test_eviction_pass_reclaims_overshoot(self, manager):
        entries = manager.dict()
        backend = SharedBackend(entries, capacity=10)
        for index in range(14):  # as racing writers could leave behind
            entries[key_digest(f"raw{index}")] = index
        backend.put("new", 1)
        # one pass drains the overshoot plus room for the newcomer, oldest first
        assert len(backend) == 10
        assert backend.evictions == 5
        assert backend.get("new") == 1
        assert backend.get("raw0") is MISSING and backend.get("raw13") == 13

    def test_create_shared_backends_one_manager(self):
        fits, partitions = create_shared_backends(2)
        try:
            fits.put("k", 1)
            assert partitions.get("k") is MISSING  # distinct regions
            partitions.put("k", 2)
            assert fits.get("k") == 1 and partitions.get("k") == 2
        finally:
            fits.close()
            partitions.close()


class TestDiskBackend:
    def test_entries_survive_a_new_backend_instance(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        first = DiskBackend(path)
        first.put(("fit", "bonus", b"tok"), [1.5, None, "x"])
        first.close()
        second = DiskBackend(path)
        assert second.get(("fit", "bonus", b"tok")) == [1.5, None, "x"]
        assert second.counters().hits == 1

    def test_handle_attach_shares_the_file(self, tmp_path):
        first = DiskBackend(tmp_path / "cache.sqlite")
        first.put("k", {"a": 1})
        second = first.handle().attach()
        assert second.get("k") == {"a": 1}

    def test_capacity_fifo_eviction(self, tmp_path):
        backend = DiskBackend(tmp_path / "cache.sqlite", capacity=2)
        backend.put("a", 1)
        backend.put("b", 2)
        backend.put("c", 3)
        assert len(backend) == 2
        assert backend.get("a") is MISSING  # oldest entry went first
        assert backend.get("c") == 3
        assert backend.evictions == 1

    def test_corrupt_entry_degrades_to_miss_and_is_discarded(self, tmp_path):
        import sqlite3

        path = tmp_path / "cache.sqlite"
        backend = DiskBackend(path)
        backend.put("k", [1, 2])
        with sqlite3.connect(path) as conn:
            conn.execute("UPDATE entries SET value = ?", (b"not a pickle",))
        assert backend.get("k") is MISSING  # degrade, never abort
        assert len(backend) == 0  # the damaged entry was discarded
        backend.put("k", [3])
        assert backend.get("k") == [3]

    def test_format_version_mismatch_drops_the_store(self, tmp_path):
        import sqlite3

        path = tmp_path / "cache.sqlite"
        first = DiskBackend(path)
        first.put("k", 1)
        first.close()
        with sqlite3.connect(path) as conn:
            conn.execute("PRAGMA user_version = 999")  # a future/foreign layout
        second = DiskBackend(path)
        assert second.get("k") is MISSING
        second.put("k", 2)
        assert second.get("k") == 2

    def test_unusable_location_raises(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        with pytest.raises(CacheStoreError):
            DiskBackend(blocker / "cache.sqlite")

    def test_namespaces_partition_one_file(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        first = DiskBackend(path, namespace=b"config-a")
        first.put("k", 1)
        second = DiskBackend(path, namespace=b"config-b")
        assert second.get("k") is MISSING  # never another config's entry
        second.put("k", 2)
        assert first.get("k") == 1 and second.get("k") == 2
        attached = second.handle().attach()  # handles carry the namespace
        assert attached.get("k") == 2

    def test_store_file_is_owner_only(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        backend = DiskBackend(path)
        backend.put("k", 1)
        assert path.stat().st_mode & 0o777 == 0o600

    def test_len_and_clear_degrade_on_a_corrupt_store(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        backend = DiskBackend(path)
        backend.put("k", 1)
        backend.close()
        path.write_bytes(b"this is no longer a sqlite database")
        assert backend.get("k") is MISSING  # degrade, never abort ...
        assert len(backend) == 0  # ... and so must the introspection calls
        backend.clear()  # a no-op, not an exception

    def test_strict_variants_raise_on_a_corrupt_store(self, tmp_path):
        # cache traffic degrades; admin tooling must see the failure instead
        path = tmp_path / "cache.sqlite"
        backend = DiskBackend(path)
        backend.put("k", 1)
        assert backend.strict_len() == 1
        backend.strict_clear()
        assert backend.strict_len() == 0
        backend.close()
        path.write_bytes(b"this is no longer a sqlite database")
        with pytest.raises(CacheStoreError):
            backend.strict_len()
        with pytest.raises(CacheStoreError):
            backend.strict_clear()


class TestTieredBackend:
    def test_l2_hit_promotes_into_l1(self, tmp_path):
        l2 = DiskBackend(tmp_path / "cache.sqlite")
        l2.put("k", 7)
        tiered = TieredBackend(InProcessBackend(), l2)
        assert tiered.get("k") == 7  # L1 miss, L2 hit, promotion
        assert tiered.get("k") == 7  # now served by L1
        breakdown = tiered.breakdown()
        assert breakdown["l1-memory"].hits == 1 and breakdown["l1-memory"].misses == 1
        assert breakdown["l2-disk"].hits == 1 and breakdown["l2-disk"].misses == 0

    def test_put_reaches_both_layers(self, tmp_path):
        l2 = DiskBackend(tmp_path / "cache.sqlite")
        tiered = TieredBackend(InProcessBackend(), l2)
        tiered.put("k", 1)
        assert l2.get("k") == 1
        assert tiered.shareable

    def test_handle_rebuilds_fresh_l1_over_same_l2(self, tmp_path):
        tiered = TieredBackend(InProcessBackend(), DiskBackend(tmp_path / "cache.sqlite"))
        tiered.put("k", 9)
        attached = tiered.handle().attach()
        assert len(attached.l1) == 0  # private, empty L1
        assert attached.get("k") == 9  # served from the shared L2

    def test_breakdown_aggregates_each_layer_separately(self, tmp_path):
        """Every L1/L2 hit, miss and eviction lands in exactly one layer's row."""
        l1 = InProcessBackend(capacity=1)
        l2 = DiskBackend(tmp_path / "cache.sqlite", capacity=2)
        tiered = TieredBackend(l1, l2)
        tiered.put("a", 1)
        tiered.put("b", 2)  # evicts "a" from the L1 (cap 1); L2 holds both
        tiered.get("b")     # L1 hit
        tiered.get("a")     # L1 miss, L2 hit, promotion (evicts "b" from L1)
        tiered.get("gone")  # misses both layers
        tiered.put("c", 3)  # L2 at cap 2: evicts its oldest ("a")
        breakdown = tiered.breakdown()
        assert breakdown["l1-memory"].hits == 1
        assert breakdown["l1-memory"].misses == 2
        assert breakdown["l1-memory"].evictions == 3
        assert breakdown["l2-disk"].hits == 1
        assert breakdown["l2-disk"].misses == 1
        assert breakdown["l2-disk"].evictions == 1
        # the flat counters are exactly the sum of the per-layer rows
        total = BackendCounters()
        for counters in breakdown.values():
            total = total + counters
        assert total == tiered.counters()

    def test_counters_subtraction_round_trips(self, tmp_path):
        tiered = TieredBackend(InProcessBackend(), DiskBackend(tmp_path / "cache.sqlite"))
        tiered.put("a", 1)
        before = tiered.counters()
        tiered.get("a")
        tiered.get("absent")
        delta = tiered.counters() - before
        assert delta.hits == 1 and delta.misses == 2  # the miss hit both layers
        assert (before + delta) == tiered.counters()


class TestKeyDigest:
    def test_stable_and_type_distinguishing(self):
        key = ("partition", "bonus", ("edu",), 3, 0.5, b"\x01\x02")
        assert key_digest(key) == key_digest(("partition", "bonus", ("edu",), 3, 0.5, b"\x01\x02"))
        assert key_digest(("1",)) != key_digest((1,))
        assert key_digest(("a", "b")) != key_digest(("ab",))


class TestFactory:
    def test_memory_default(self):
        fits, partitions = build_search_backends("memory", capacity=5)
        assert isinstance(fits, InProcessBackend) and isinstance(partitions, InProcessBackend)
        assert fits.capacity == 5 and fits is not partitions

    def test_disk_requires_cache_dir(self):
        with pytest.raises(ConfigurationError):
            build_search_backends("disk")

    def test_disk_pair_uses_distinct_files(self, tmp_path):
        fits, partitions = build_search_backends("disk", cache_dir=tmp_path)
        assert fits.path != partitions.path
        fits.put("k", 1)
        assert partitions.get("k") is MISSING

    def test_namespace_reaches_the_disk_stores(self, tmp_path):
        fits_a, _ = build_search_backends("disk", cache_dir=tmp_path, namespace=b"a")
        fits_a.put("k", 1)
        fits_b, _ = build_search_backends("disk", cache_dir=tmp_path, namespace=b"b")
        assert fits_b.get("k") is MISSING
        tiered, _ = build_search_backends(
            "tiered-disk", cache_dir=tmp_path, namespace=b"a"
        )
        assert tiered.get("k") == 1  # same namespace, same entries

    def test_tiered_disk_composes(self, tmp_path):
        fits, _ = build_search_backends("tiered-disk", cache_dir=tmp_path)
        assert isinstance(fits, TieredBackend)
        assert fits.kind == "tiered(memory+disk)"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError) as excinfo:
            build_search_backends("redis")
        assert "cache_backend" in str(excinfo.value)

    def test_tiered_disk_also_requires_cache_dir(self):
        with pytest.raises(ConfigurationError) as excinfo:
            build_search_backends("tiered-disk", capacity=8)
        assert "cache_dir" in str(excinfo.value)

    def test_remote_requires_cache_url(self):
        with pytest.raises(ConfigurationError) as excinfo:
            build_search_backends("remote")
        assert "cache_url" in str(excinfo.value)

    def test_remote_pair_uses_distinct_regions(self):
        # the factory always builds the sharded fabric, even for a single
        # endpoint — one remote code path, a 1-shard ring
        from repro.cacheserver.fabric import ShardedRemoteBackend
        from repro.cacheserver.protocol import REGION_FITS, REGION_PARTITIONS

        fits, partitions = build_search_backends(
            "remote", capacity=9, namespace=b"ns", cache_url="127.0.0.1:1"
        )
        assert isinstance(fits, ShardedRemoteBackend)
        assert isinstance(partitions, ShardedRemoteBackend)
        assert fits._region == REGION_FITS and partitions._region == REGION_PARTITIONS
        assert fits.capacity == 9 and fits.namespace == b"ns"
        assert fits.shareable and fits.kind == "remote"

    def test_remote_pair_with_sharded_url_and_replication(self):
        fits, _ = build_search_backends(
            "remote",
            namespace=b"ns",
            cache_url="127.0.0.1:1,127.0.0.1:2,127.0.0.1:3",
            cache_replication=2,
        )
        assert fits.endpoints == ("127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3")
        assert fits.replication == 2 and fits.kind == "remote"

    def test_choices_cover_every_kind(self):
        assert set(BACKEND_CHOICES) == {
            "memory", "shared", "disk", "tiered-shared", "tiered-disk", "remote"
        }
