"""Eviction policies: LRU/FIFO reproduce the old orders; cost-aware beats both."""

import pytest

from repro.cachestore import (
    MISSING,
    CostAwarePolicy,
    FIFOPolicy,
    InProcessBackend,
    LRUPolicy,
    POLICY_CHOICES,
    make_policy,
)
from repro.exceptions import ConfigurationError


class TestMakePolicy:
    def test_every_choice_constructs(self):
        names = {make_policy(name).name for name in POLICY_CHOICES}
        assert names == set(POLICY_CHOICES)

    def test_instances_are_fresh(self):
        assert make_policy("lru") is not make_policy("lru")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("random")


class TestLRUPolicy:
    def test_backend_default_is_lru(self):
        assert InProcessBackend().policy.name == "lru"

    def test_get_refreshes_recency(self):
        backend = InProcessBackend(capacity=2, policy=LRUPolicy())
        backend.put("a", 1)
        backend.put("b", 2)
        backend.get("a")
        backend.put("c", 3)
        assert backend.get("b") is MISSING
        assert backend.get("a") == 1 and backend.get("c") == 3


class TestFIFOPolicy:
    def test_get_does_not_refresh(self):
        backend = InProcessBackend(capacity=2, policy=FIFOPolicy())
        backend.put("a", 1)
        backend.put("b", 2)
        backend.get("a")  # recency-blind: "a" is still the oldest insert
        backend.put("c", 3)
        assert backend.get("a") is MISSING
        assert backend.get("b") == 2 and backend.get("c") == 3

    def test_overwrite_keeps_queue_position(self):
        backend = InProcessBackend(capacity=2, policy=FIFOPolicy())
        backend.put("a", 1)
        backend.put("b", 2)
        backend.put("a", 10)  # a value update, not a new entry
        backend.put("c", 3)
        assert backend.get("a") is MISSING  # still first in, first out
        assert backend.get("b") == 2


class TestCostAwarePolicy:
    def test_retains_expensive_entries_lru_would_evict(self):
        # the scenario the policy exists for: one expensive discovery followed
        # by a stream of cheap fits that never touches it again
        def fill(backend):
            backend.put("expensive", b"x" * 64, cost_hint=5.0)
            for index in range(10):
                backend.put(f"cheap{index}", b"y" * 64, cost_hint=0.001)

        lru = InProcessBackend(capacity=3, policy=LRUPolicy())
        fill(lru)
        assert lru.get("expensive") is MISSING  # recency alone forgets it

        aware = InProcessBackend(capacity=3, policy=CostAwarePolicy())
        fill(aware)
        assert aware.get("expensive") == b"x" * 64  # cost keeps it resident
        assert aware.evictions == lru.evictions == 8

    def test_evicts_cheapest_per_byte_first(self):
        backend = InProcessBackend(capacity=2, policy=CostAwarePolicy())
        backend.put("dense", b"x" * 10, cost_hint=1.0)    # 0.1 s/byte
        backend.put("sparse", b"y" * 1000, cost_hint=1.0)  # 0.001 s/byte
        backend.put("new", b"z" * 10, cost_hint=0.5)       # 0.05 s/byte
        assert backend.get("sparse") is MISSING
        assert backend.get("dense") == b"x" * 10 and backend.get("new") == b"z" * 10

    def test_cheap_newcomer_may_be_its_own_victim(self):
        backend = InProcessBackend(capacity=1, policy=CostAwarePolicy())
        backend.put("expensive", b"x", cost_hint=9.0)
        backend.put("cheap", b"y", cost_hint=0.0)
        # refusing to displace expensive work is the policy working as intended
        assert backend.get("cheap") is MISSING
        assert backend.get("expensive") == b"x"
        assert backend.evictions == 1

    def test_unmeasured_entries_fall_back_to_fifo_among_themselves(self):
        backend = InProcessBackend(capacity=2, policy=CostAwarePolicy())
        backend.put("first", b"a")
        backend.put("second", b"b")
        backend.put("third", b"c")
        assert backend.get("first") is MISSING
        assert backend.get("second") == b"b" and backend.get("third") == b"c"

    def test_overwrite_keeps_the_higher_observed_cost(self):
        backend = InProcessBackend(capacity=2, policy=CostAwarePolicy())
        backend.put("k", b"x", cost_hint=5.0)
        backend.put("k", b"x", cost_hint=0.001)  # a racing fast recomputation
        backend.put("other", b"y", cost_hint=1.0)
        backend.put("straw", b"z", cost_hint=0.5)
        # were the overwrite to downgrade "k" to 0.001, "k" would be the
        # cheapest entry and the one evicted here; instead "straw" loses
        assert backend.get("k") == b"x"
        assert backend.get("other") == b"y"
        assert backend.get("straw") is MISSING

    def test_clear_resets_the_policy_state(self):
        backend = InProcessBackend(capacity=2, policy=CostAwarePolicy())
        backend.put("a", b"x", cost_hint=2.0)
        backend.clear()
        backend.put("b", b"y", cost_hint=0.1)
        backend.put("c", b"z", cost_hint=0.2)
        backend.put("d", b"w", cost_hint=0.3)
        # eviction still works and never references the cleared "a"
        assert len(backend) == 2
        assert backend.get("b") is MISSING
