"""Patch entries are ordinary cache values: opaque, durable, namespaced.

The maintenance layer (:mod:`repro.search.maintenance`) stores
:class:`~repro.search.maintenance.PartitionPatchRecord` values — carrying the
base-key digest, the delta digest and a full
:class:`~repro.search.maintenance.PartitionIndexEntry` — through the same
backends as every memo entry.  These tests pin the two properties it relies
on: records round-trip unchanged through persistent storage (numpy masks,
conditions, certificates and all), and persistent stores namespace them by
the config fingerprint, so one configuration's patches can never serve
another's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cachestore import MISSING, DiskBackend
from repro.core import CharlesConfig
from repro.core.partitioning import discover_partitions
from repro.relational.snapshot import SnapshotPair
from repro.relational.table import Table
from repro.search.maintenance import (
    PartitionCertificate,
    PartitionIndexEntry,
    PartitionPatchRecord,
)


@pytest.fixture(scope="module")
def record() -> PartitionPatchRecord:
    """A realistic patch record: real partitions, certificate, digests."""
    rows = [
        {"id": "a", "edu": "MS", "bonus": 100.0},
        {"id": "b", "edu": "MS", "bonus": 200.0},
        {"id": "c", "edu": "BS", "bonus": 300.0},
        {"id": "d", "edu": "BS", "bonus": 400.0},
    ]
    source = Table.from_rows(rows, primary_key="id")
    target = source.with_column("bonus", [110.0, 220.0, 300.0, 400.0])
    pair = SnapshotPair.align(source, target, key="id")
    partitions = discover_partitions(pair, "bonus", ("edu",), ("bonus",), 2, CharlesConfig())
    entry = PartitionIndexEntry(
        partitions=tuple(partitions),
        certificate=PartitionCertificate(
            changed_digest=b"c" * 16,
            input_token=b"t" * 16,
            labels=np.array([0, 0], dtype=np.intp),
        ),
    )
    return PartitionPatchRecord(b"base-digest-0123", b"delta-digest-456", entry, "patched")


_PATCH_KEY = ("partition-patch", "bonus", ("edu",), ("bonus",), 2, 1.0, b"base", b"delta")


def _assert_record_roundtrips(original: PartitionPatchRecord, loaded) -> None:
    assert isinstance(loaded, PartitionPatchRecord)
    assert loaded.base_digest == original.base_digest
    assert loaded.delta_digest == original.delta_digest
    assert loaded.reason == original.reason
    assert loaded.patched
    assert loaded.entry.certificate.changed_digest == original.entry.certificate.changed_digest
    assert loaded.entry.certificate.input_token == original.entry.certificate.input_token
    assert np.array_equal(loaded.entry.certificate.labels, original.entry.certificate.labels)
    assert len(loaded.entry.partitions) == len(original.entry.partitions)
    for ours, theirs in zip(loaded.entry.partitions, original.entry.partitions):
        assert ours.condition.descriptors == theirs.condition.descriptors
        assert np.array_equal(ours.mask, theirs.mask)
        assert ours.fidelity == theirs.fidelity
        assert ours.coverage == theirs.coverage


class TestPatchEntriesOnDisk:
    def test_record_survives_a_fresh_connection(self, tmp_path, record):
        path = tmp_path / "partitions.sqlite"
        writer = DiskBackend(path)
        writer.put(_PATCH_KEY, record, cost_hint=0.01)
        writer.close()
        reader = DiskBackend(path)  # a later session over the same file
        _assert_record_roundtrips(record, reader.get(_PATCH_KEY))
        reader.close()

    def test_fallback_marker_survives_too(self, tmp_path, record):
        path = tmp_path / "partitions.sqlite"
        marker = PartitionPatchRecord(
            record.base_digest, record.delta_digest, None, "certificate-mismatch"
        )
        writer = DiskBackend(path)
        writer.put(_PATCH_KEY, marker)
        writer.close()
        loaded = DiskBackend(path).get(_PATCH_KEY)
        assert isinstance(loaded, PartitionPatchRecord)
        assert not loaded.patched and loaded.entry is None
        assert loaded.reason == "certificate-mismatch"

    def test_records_are_fingerprint_namespaced(self, tmp_path, record):
        """A config change must never reuse another config's patches."""
        path = tmp_path / "partitions.sqlite"
        config_a = CharlesConfig()
        config_b = CharlesConfig(seed=config_a.seed + 1)  # result-affecting knob
        writer = DiskBackend(path, namespace=config_a.cache_fingerprint())
        writer.put(_PATCH_KEY, record)
        other_config = DiskBackend(path, namespace=config_b.cache_fingerprint())
        assert other_config.get(_PATCH_KEY) is MISSING
        same_config = DiskBackend(path, namespace=config_a.cache_fingerprint())
        _assert_record_roundtrips(record, same_config.get(_PATCH_KEY))
        for backend in (writer, other_config, same_config):
            backend.close()

    def test_execution_only_knobs_keep_patches_reachable(self, tmp_path, record):
        # partition_maintenance and n_jobs are execution-only: flipping them
        # must keep the same namespace, so existing patches stay warm
        path = tmp_path / "partitions.sqlite"
        config = CharlesConfig()
        flipped = config.replace(partition_maintenance=False, n_jobs=4)
        assert config.cache_fingerprint() == flipped.cache_fingerprint()
        writer = DiskBackend(path, namespace=config.cache_fingerprint())
        writer.put(_PATCH_KEY, record)
        reader = DiskBackend(path, namespace=flipped.cache_fingerprint())
        _assert_record_roundtrips(record, reader.get(_PATCH_KEY))
        writer.close()
        reader.close()
