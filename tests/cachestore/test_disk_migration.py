"""On-disk format migration: v1 stores survive the cost column, unknowns drop.

A persistent cache accumulated over days must not be thrown away by a code
upgrade — the v1 → v2 migration keeps every entry and defaults its cost to
0.0 (all ties → the old FIFO order), while stores stamped with versions this
code has never heard of are dropped wholesale rather than misread.
"""

import pickle
import sqlite3

import pytest

from repro.cachestore import MISSING
from repro.cachestore.disk import DiskBackend, DiskHandle


def _make_v1_store(path, entries: dict[bytes, object]) -> None:
    """Write a store exactly as the PR-3 code laid it out: no cost column."""
    conn = sqlite3.connect(path)
    conn.execute("CREATE TABLE entries (key BLOB PRIMARY KEY, value BLOB NOT NULL)")
    for key, value in entries.items():
        conn.execute(
            "INSERT INTO entries (key, value) VALUES (?, ?)",
            (key, pickle.dumps(value)),
        )
    conn.execute("PRAGMA user_version = 1")
    conn.commit()
    conn.close()


def _columns(path) -> list[str]:
    conn = sqlite3.connect(path)
    try:
        return [row[1] for row in conn.execute("PRAGMA table_info(entries)")]
    finally:
        conn.close()


def _user_version(path) -> int:
    conn = sqlite3.connect(path)
    try:
        return conn.execute("PRAGMA user_version").fetchone()[0]
    finally:
        conn.close()


class TestV1Migration:
    def test_v1_store_opens_and_entries_survive(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        _make_v1_store(path, {b"k" * 16: {"fit": [1, 2, 3]}, b"j" * 16: "other"})
        backend = DiskBackend(path)
        assert len(backend) == 2  # nothing was dropped
        assert _columns(path) == ["key", "value", "cost"]
        assert _user_version(path) == 2
        backend.close()

    def test_migrated_entries_are_readable_through_the_backend(self, tmp_path):
        # write through a backend-digested key so a post-migration get hits it
        path = tmp_path / "cache.sqlite"
        seed = DiskBackend(path)
        seed.put(("fit", "bonus"), {"value": 42})
        seed.close()
        # rewind the file to v1: drop the cost column wholesale, restamp
        conn = sqlite3.connect(path)
        conn.execute("ALTER TABLE entries DROP COLUMN cost")
        conn.execute("PRAGMA user_version = 1")
        conn.commit()
        conn.close()
        migrated = DiskBackend(path)
        assert migrated.get(("fit", "bonus")) == {"value": 42}
        migrated.close()

    def test_migrated_costs_default_to_zero(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        _make_v1_store(path, {b"k" * 16: "value"})
        DiskBackend(path).close()
        conn = sqlite3.connect(path)
        costs = [row[0] for row in conn.execute("SELECT cost FROM entries")]
        conn.close()
        assert costs == [0.0]

    def test_second_open_is_a_no_op(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        _make_v1_store(path, {b"k" * 16: "value"})
        DiskBackend(path).close()
        again = DiskBackend(path)  # must not re-ALTER or drop anything
        assert len(again) == 1
        assert _columns(path) == ["key", "value", "cost"]
        assert _user_version(path) == 2
        again.close()

    def test_v1_stamp_without_entries_table_recovers_as_fresh(self, tmp_path):
        # a stamped-but-empty file (e.g. a crashed first open) must not make
        # the ALTER TABLE explode — it is just a fresh v2 store
        path = tmp_path / "cache.sqlite"
        conn = sqlite3.connect(path)
        conn.execute("PRAGMA user_version = 1")
        conn.commit()
        conn.close()
        backend = DiskBackend(path)
        backend.put("k", 1)
        assert backend.get("k") == 1
        backend.close()

    def test_unknown_future_version_is_dropped_wholesale(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        _make_v1_store(path, {b"k" * 16: "value"})
        conn = sqlite3.connect(path)
        conn.execute("PRAGMA user_version = 99")  # from a future this code can't read
        conn.commit()
        conn.close()
        backend = DiskBackend(path)
        assert len(backend) == 0  # dropped, not misread
        assert _user_version(path) == 2
        backend.put("k", 1)
        assert backend.get("k") == 1
        backend.close()


class TestCostAwareEvictionOnDisk:
    def test_expensive_entries_outlive_cheap_floods(self, tmp_path):
        backend = DiskBackend(tmp_path / "cache.sqlite", capacity=3)
        assert backend.policy == "cost-aware"
        backend.put("expensive", list(range(8)), cost_hint=4.0)
        for index in range(10):
            backend.put(f"cheap{index}", list(range(8)), cost_hint=0.0001)
        assert backend.get("expensive") == list(range(8))
        assert backend.evictions == 8
        backend.close()

    def test_fifo_policy_restores_insertion_order_eviction(self, tmp_path):
        backend = DiskBackend(tmp_path / "cache.sqlite", capacity=3, policy="fifo")
        backend.put("expensive", list(range(8)), cost_hint=4.0)
        for index in range(10):
            backend.put(f"cheap{index}", list(range(8)), cost_hint=0.0001)
        # recency/cost-blind retention forgets the expensive entry
        assert backend.get("expensive") is MISSING
        backend.close()

    def test_all_zero_costs_degenerate_to_fifo(self, tmp_path):
        # the migration guarantee: a freshly migrated store (every cost 0.0)
        # evicts in exactly the old FIFO order until new costs arrive
        backend = DiskBackend(tmp_path / "cache.sqlite", capacity=2)
        backend.put("first", "a")
        backend.put("second", "b")
        backend.put("third", "c")
        assert backend.get("first") is MISSING
        assert backend.get("second") == "b" and backend.get("third") == "c"
        backend.close()

    def test_costs_persist_across_processes_for_eviction(self, tmp_path):
        # the writer that observed the cost and the store under pressure can
        # be different processes days apart — the column is what carries it
        path = tmp_path / "cache.sqlite"
        writer = DiskBackend(path)
        writer.put("expensive", "x", cost_hint=9.0)
        writer.put("cheap", "y", cost_hint=0.001)
        writer.close()
        later = DiskBackend(path, capacity=2)
        later.put("incoming", "z", cost_hint=0.01)  # forces one eviction
        assert later.get("expensive") == "x"
        assert later.get("cheap") is MISSING
        later.close()

    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DiskBackend(tmp_path / "cache.sqlite", policy="lru")

    def test_handle_carries_the_policy(self, tmp_path):
        backend = DiskBackend(tmp_path / "cache.sqlite", capacity=5, policy="fifo")
        handle = backend.handle()
        assert isinstance(handle, DiskHandle) and handle.policy == "fifo"
        attached = pickle.loads(pickle.dumps(handle)).attach()
        assert attached.policy == "fifo" and attached.capacity == 5
        attached.close(), backend.close()
