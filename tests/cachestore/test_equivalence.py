"""Backends change where entries live, never what a search returns."""

import pytest

from repro.core import Charles, CharlesConfig
from repro.search.cache import SearchCaches
from repro.timeline import EngineSession


def _ranking(result):
    """Byte-exact identity of a ranked result: text, scores and provenance."""
    return [
        (
            scored.summary.describe(),
            scored.score,
            scored.condition_attributes,
            scored.transformation_attributes,
            scored.n_partitions,
        )
        for scored in result.summaries
    ]


def _summarize(pair, config):
    return Charles(config).summarize_pair(
        pair,
        "bonus",
        condition_attributes=["edu", "exp"],
        transformation_attributes=["bonus", "salary"],
    )


@pytest.fixture(scope="module")
def memory_ranking(fig1_pair):
    return _ranking(_summarize(fig1_pair, CharlesConfig()))


class TestRankingsAcrossBackends:
    def test_disk_backend_identical(self, fig1_pair, memory_ranking, tmp_path):
        config = CharlesConfig(cache_backend="disk", cache_dir=str(tmp_path))
        result = _summarize(fig1_pair, config)
        assert _ranking(result) == memory_ranking
        assert result.search_stats.cache_backend == "disk"

    def test_tiered_disk_backend_identical(self, fig1_pair, memory_ranking, tmp_path):
        config = CharlesConfig(cache_backend="tiered-disk", cache_dir=str(tmp_path))
        result = _summarize(fig1_pair, config)
        assert _ranking(result) == memory_ranking
        assert result.search_stats.cache_backend == "tiered(memory+disk)"

    def test_shared_backend_identical(self, fig1_pair, memory_ranking):
        config = CharlesConfig(cache_backend="shared")
        with EngineSession(config) as session:
            result = session.summarize_pair(
                fig1_pair,
                "bonus",
                condition_attributes=["edu", "exp"],
                transformation_attributes=["bonus", "salary"],
            )
        assert _ranking(result) == memory_ranking
        assert result.search_stats.cache_backend == "shared"

    def test_one_shot_serial_ignores_shared_backend(self, fig1_pair, memory_ranking):
        # with no session and no workers a shared store could not outlive the
        # run, so the serial executor quietly uses in-process caches instead
        result = _summarize(fig1_pair, CharlesConfig(cache_backend="shared"))
        assert _ranking(result) == memory_ranking
        assert result.search_stats.cache_backend == "memory"

    def test_parallel_workers_attached_to_shared_store_identical(
        self, employee_200, tmp_path
    ):
        serial = Charles(CharlesConfig()).summarize_pair(
            employee_200, "bonus",
            condition_attributes=["edu", "exp"], transformation_attributes=["bonus"],
        )
        shared = Charles(
            CharlesConfig(n_jobs=2, cache_backend="shared")
        ).summarize_pair(
            employee_200, "bonus",
            condition_attributes=["edu", "exp"], transformation_attributes=["bonus"],
        )
        assert _ranking(serial) == _ranking(shared)
        assert shared.search_stats.cache_backend == "shared"


class TestDiskWarmStart:
    def test_second_run_is_fully_warm(self, fig1_pair, tmp_path):
        config = CharlesConfig(cache_backend="disk", cache_dir=str(tmp_path))
        first = _summarize(fig1_pair, config)
        # a brand-new Charles (fresh engine, fresh caches object) over the same
        # cache_dir: every lookup must come off the file the first run wrote
        second = _summarize(fig1_pair, config)
        assert _ranking(second) == _ranking(first)
        stats = second.search_stats
        assert stats.cache_hits > 0
        assert stats.fit_cache_misses == 0 and stats.partition_cache_misses == 0

    def test_fresh_session_starts_warm_from_disk(self, fig1_pair, tmp_path):
        config = CharlesConfig(cache_backend="disk", cache_dir=str(tmp_path))
        with EngineSession(config) as session:
            cold = session.summarize_pair(fig1_pair, "bonus")
        with EngineSession(config) as session:
            warm = session.summarize_pair(fig1_pair, "bonus")
            counters = session.cache_counters()
        assert _ranking(warm) == _ranking(cold)
        assert counters.hits > 0 and counters.misses == 0

    def test_per_backend_breakdown_travels_in_stats(self, fig1_pair, tmp_path):
        config = CharlesConfig(cache_backend="tiered-disk", cache_dir=str(tmp_path))
        _summarize(fig1_pair, config)
        stats = _summarize(fig1_pair, config).search_stats
        assert set(stats.backend_counters) == {"l1-memory", "l2-disk"}
        # the second run's first lookups of each key come off the disk L2,
        # later repeats off the promoted L1 copies
        assert stats.backend_counters["l2-disk"].hits > 0
        payload = stats.as_dict()
        assert payload["cache_backend"] == "tiered(memory+disk)"
        assert payload["backend_counters"]["l2-disk"]["hits"] > 0


class TestSearchCachesFromConfig:
    def test_attach_shares_physical_storage(self, tmp_path):
        config = CharlesConfig(cache_backend="disk", cache_dir=str(tmp_path))
        caches = SearchCaches.from_config(config)
        assert caches.shareable and caches.backend_kind == "disk"
        caches.fits.get_or_compute("k", lambda: 41)
        attached = SearchCaches.attach(caches.handles())
        assert attached.fits.get_or_compute("k", lambda: 99) == 41
        caches.close()

    def test_memory_caches_are_not_shareable(self):
        caches = SearchCaches.from_config(CharlesConfig())
        assert not caches.shareable and caches.backend_kind == "memory"

    def test_config_rejects_disk_without_dir(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            CharlesConfig(cache_backend="disk")
        with pytest.raises(ConfigurationError):
            CharlesConfig(cache_backend="memcached")
