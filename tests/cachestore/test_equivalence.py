"""Backends change where entries live, never what a search returns."""

import pytest

from repro.core import Charles, CharlesConfig
from repro.search.cache import SearchCaches
from repro.timeline import EngineSession


def _ranking(result):
    """Byte-exact identity of a ranked result: text, scores and provenance."""
    return [
        (
            scored.summary.describe(),
            scored.score,
            scored.condition_attributes,
            scored.transformation_attributes,
            scored.n_partitions,
        )
        for scored in result.summaries
    ]


def _summarize(pair, config):
    return Charles(config).summarize_pair(
        pair,
        "bonus",
        condition_attributes=["edu", "exp"],
        transformation_attributes=["bonus", "salary"],
    )


@pytest.fixture(scope="module")
def memory_ranking(fig1_pair):
    return _ranking(_summarize(fig1_pair, CharlesConfig()))


class TestRankingsAcrossBackends:
    def test_disk_backend_identical(self, fig1_pair, memory_ranking, tmp_path):
        config = CharlesConfig(cache_backend="disk", cache_dir=str(tmp_path))
        result = _summarize(fig1_pair, config)
        assert _ranking(result) == memory_ranking
        assert result.search_stats.cache_backend == "disk"
        assert result.search_stats.cache_backend_requested is None

    def test_tiered_disk_backend_identical(self, fig1_pair, memory_ranking, tmp_path):
        config = CharlesConfig(cache_backend="tiered-disk", cache_dir=str(tmp_path))
        result = _summarize(fig1_pair, config)
        assert _ranking(result) == memory_ranking
        assert result.search_stats.cache_backend == "tiered(memory+disk)"

    def test_shared_backend_identical(self, fig1_pair, memory_ranking):
        config = CharlesConfig(cache_backend="shared")
        with EngineSession(config) as session:
            result = session.summarize_pair(
                fig1_pair,
                "bonus",
                condition_attributes=["edu", "exp"],
                transformation_attributes=["bonus", "salary"],
            )
        assert _ranking(result) == memory_ranking
        assert result.search_stats.cache_backend == "shared"

    def test_one_shot_serial_ignores_shared_backend(self, fig1_pair, memory_ranking):
        # with no session and no workers a shared store could not outlive the
        # run, so the serial executor uses in-process caches instead — and
        # records the substitution rather than pretending nothing happened
        result = _summarize(fig1_pair, CharlesConfig(cache_backend="shared"))
        assert _ranking(result) == memory_ranking
        stats = result.search_stats
        assert stats.cache_backend == "memory"
        assert stats.cache_backend_requested == "shared"
        assert stats.as_dict()["cache_backend_requested"] == "shared"
        assert "'shared' not used" in stats.describe()

    def test_parallel_workers_attached_to_shared_store_identical(
        self, employee_200, tmp_path
    ):
        serial = Charles(CharlesConfig()).summarize_pair(
            employee_200, "bonus",
            condition_attributes=["edu", "exp"], transformation_attributes=["bonus"],
        )
        shared = Charles(
            CharlesConfig(n_jobs=2, cache_backend="shared")
        ).summarize_pair(
            employee_200, "bonus",
            condition_attributes=["edu", "exp"], transformation_attributes=["bonus"],
        )
        assert _ranking(serial) == _ranking(shared)
        assert shared.search_stats.cache_backend == "shared"


class TestDiskWarmStart:
    def test_second_run_is_fully_warm(self, fig1_pair, tmp_path):
        config = CharlesConfig(cache_backend="disk", cache_dir=str(tmp_path))
        first = _summarize(fig1_pair, config)
        # a brand-new Charles (fresh engine, fresh caches object) over the same
        # cache_dir: every lookup must come off the file the first run wrote
        second = _summarize(fig1_pair, config)
        assert _ranking(second) == _ranking(first)
        stats = second.search_stats
        assert stats.cache_hits > 0
        assert stats.fit_cache_misses == 0 and stats.partition_cache_misses == 0

    def test_fresh_session_starts_warm_from_disk(self, fig1_pair, tmp_path):
        config = CharlesConfig(cache_backend="disk", cache_dir=str(tmp_path))
        with EngineSession(config) as session:
            cold = session.summarize_pair(fig1_pair, "bonus")
        with EngineSession(config) as session:
            warm = session.summarize_pair(fig1_pair, "bonus")
            counters = session.cache_counters()
        assert _ranking(warm) == _ranking(cold)
        assert counters.hits > 0 and counters.misses == 0

    def test_per_backend_breakdown_travels_in_stats(self, fig1_pair, tmp_path):
        config = CharlesConfig(cache_backend="tiered-disk", cache_dir=str(tmp_path))
        _summarize(fig1_pair, config)
        stats = _summarize(fig1_pair, config).search_stats
        assert set(stats.backend_counters) == {"l1-memory", "l2-disk"}
        # the second run's first lookups of each key come off the disk L2,
        # later repeats off the promoted L1 copies
        assert stats.backend_counters["l2-disk"].hits > 0
        payload = stats.as_dict()
        assert payload["cache_backend"] == "tiered(memory+disk)"
        assert payload["backend_counters"]["l2-disk"]["hits"] > 0


class TestConfigNamespacing:
    """A shared cache_dir must never leak entries across configurations."""

    def test_fingerprint_ignores_execution_knobs(self):
        base = CharlesConfig()
        assert base.cache_fingerprint() == CharlesConfig().cache_fingerprint()
        neutral = base.replace(
            n_jobs=4,
            top_k=3,
            prune_search=False,
            search_cache_capacity=128,
            warm_start=False,
        )
        # these knobs pick the execution strategy, never the computed values:
        # flipping them must keep a persistent cache warm
        assert neutral.cache_fingerprint() == base.cache_fingerprint()

    def test_fingerprint_rotates_on_result_affecting_knobs(self):
        base = CharlesConfig()
        for changed in (
            base.replace(seed=7),
            base.replace(min_partition_coverage=0.1),
            base.replace(ridge=1e-6),
            base.replace(residual_weights=(1.0,)),
        ):
            assert changed.cache_fingerprint() != base.cache_fingerprint()

    def test_reconfigured_run_starts_cold_on_a_shared_cache_dir(
        self, fig1_pair, tmp_path
    ):
        config = CharlesConfig(cache_backend="disk", cache_dir=str(tmp_path))
        _summarize(fig1_pair, config)
        # a different seed changes k-means outcomes without changing content
        # keys — the second run must recompute, not reuse seed-0 entries
        stats = _summarize(fig1_pair, config.replace(seed=123)).search_stats
        assert stats.fit_cache_misses > 0 and stats.partition_cache_misses > 0
        # while the original config stays fully warm alongside it
        warm = _summarize(fig1_pair, config).search_stats
        assert warm.fit_cache_misses == 0 and warm.partition_cache_misses == 0


class TestSearchCachesFromConfig:
    def test_attach_shares_physical_storage(self, tmp_path):
        config = CharlesConfig(cache_backend="disk", cache_dir=str(tmp_path))
        caches = SearchCaches.from_config(config)
        assert caches.shareable and caches.backend_kind == "disk"
        caches.fits.get_or_compute("k", lambda: 41)
        attached = SearchCaches.attach(caches.handles())
        assert attached.fits.get_or_compute("k", lambda: 99) == 41
        caches.close()

    def test_memory_caches_are_not_shareable(self):
        caches = SearchCaches.from_config(CharlesConfig())
        assert not caches.shareable and caches.backend_kind == "memory"

    def test_config_rejects_disk_without_dir(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            CharlesConfig(cache_backend="disk")
        with pytest.raises(ConfigurationError):
            CharlesConfig(cache_backend="memcached")
