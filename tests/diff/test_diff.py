"""Unit tests for the syntactic diff substrate (cells, update distance, drift)."""

import numpy as np
import pytest

from repro.diff import (
    batch_update_distance,
    diff_snapshots,
    drift_report,
    update_distance,
)
from repro.relational.snapshot import SnapshotPair
from repro.relational.table import Table


class TestCellDiff:
    def test_counts_changed_cells_in_fig1(self, fig1_pair):
        report = diff_snapshots(fig1_pair)
        # every employee's exp advanced (9) and seven bonuses changed
        assert report.num_changes == 9 + 7
        assert set(report.changed_attributes) == {"exp", "bonus"}

    def test_changes_for_one_attribute(self, fig1_pair):
        report = diff_snapshots(fig1_pair)
        bonus_changes = report.changes_for("bonus")
        assert len(bonus_changes) == 7
        keys = {change.key for change in bonus_changes}
        assert "Cathy" not in keys and "James" not in keys

    def test_numeric_delta_and_statistics(self, fig1_pair):
        report = diff_snapshots(fig1_pair)
        stats = report.attribute_diff("bonus")
        assert stats is not None
        assert stats.changed_cells == 7
        assert stats.change_fraction == pytest.approx(7 / 9)
        assert stats.min_delta > 0

    def test_attribute_restriction(self, fig1_pair):
        report = diff_snapshots(fig1_pair, attributes=["bonus"])
        assert set(change.attribute for change in report) == {"bonus"}

    def test_identical_snapshots_have_empty_diff(self, fig1_tables):
        source, _ = fig1_tables
        pair = SnapshotPair.align(source, source)
        report = diff_snapshots(pair)
        assert report.num_changes == 0
        assert report.changed_attributes == []

    def test_categorical_changes_tracked(self):
        left = Table.from_rows([{"id": 1, "dept": "A"}, {"id": 2, "dept": "B"}], primary_key="id")
        right = Table.from_rows([{"id": 1, "dept": "Z"}, {"id": 2, "dept": "B"}], primary_key="id")
        report = diff_snapshots(SnapshotPair.align(left, right))
        assert report.num_changes == 1
        assert report.changes[0].numeric_delta is None

    def test_describe_truncates(self, fig1_pair):
        text = diff_snapshots(fig1_pair).describe(limit=3)
        assert "and" in text and "more" in text


class TestUpdateDistance:
    def test_update_only_evolution(self, fig1_tables):
        source, target = fig1_tables
        distance = update_distance(source, target, key="name")
        assert distance.modifications == 16
        assert distance.insertions == 0 and distance.deletions == 0
        assert distance.total == 16

    def test_insertions_and_deletions_counted(self):
        source = Table.from_rows([{"id": 1, "v": 1.0}, {"id": 2, "v": 2.0}], primary_key="id")
        target = Table.from_rows([{"id": 2, "v": 2.5}, {"id": 3, "v": 3.0}], primary_key="id")
        distance = update_distance(source, target)
        assert distance.modifications == 1
        assert distance.insertions == 1 and distance.deletions == 1

    def test_positional_distance_without_key(self):
        source = Table.from_columns({"v": [1.0, 2.0, 3.0]})
        target = Table.from_columns({"v": [1.0, 9.0]})
        distance = update_distance(source, target)
        assert distance.modifications == 1 and distance.deletions == 1

    def test_batch_update_distance(self, fig1_pair):
        assert batch_update_distance(fig1_pair) == 2  # exp and bonus changed

    def test_str_rendering(self, fig1_tables):
        source, target = fig1_tables
        assert "update distance" in str(update_distance(source, target, key="name"))


class TestDrift:
    def test_changed_attribute_has_positive_drift(self, fig1_pair):
        report = drift_report(fig1_pair)
        bonus = report.for_attribute("bonus")
        salary = report.for_attribute("salary")
        assert bonus is not None and bonus.drift_score > 0.0
        assert salary is not None and salary.drift_score == pytest.approx(0.0)

    def test_report_sorted_by_drift(self, fig1_pair):
        report = drift_report(fig1_pair)
        scores = [drift.drift_score for drift in report.drifts]
        assert scores == sorted(scores, reverse=True)

    def test_categorical_drift_total_variation(self):
        left = Table.from_rows([{"id": i, "cat": "a"} for i in range(10)], primary_key="id")
        right = Table.from_rows(
            [{"id": i, "cat": "a" if i < 5 else "b"} for i in range(10)], primary_key="id"
        )
        report = drift_report(SnapshotPair.align(left, right))
        drift = report.for_attribute("cat")
        assert drift is not None
        assert drift.histogram_distance == pytest.approx(0.5)

    def test_top_listing_and_describe(self, fig1_pair):
        report = drift_report(fig1_pair)
        assert len(report.top(2)) == 2
        assert "drift" in report.describe()

    def test_unknown_attribute_returns_none(self, fig1_pair):
        assert drift_report(fig1_pair).for_attribute("nonexistent") is None


class TestTimelineDiff:
    def _store(self):
        from repro.relational.table import Table
        from repro.timeline import TimelineStore

        v1 = Table.from_rows(
            [
                {"id": "a", "dept": "ops", "pay": 100.0, "bonus": 10.0},
                {"id": "b", "dept": "ops", "pay": 200.0, "bonus": 20.0},
                {"id": "c", "dept": "eng", "pay": 300.0, "bonus": 30.0},
            ],
            primary_key="id",
        )
        v2 = v1.with_column("pay", [110.0, 220.0, 300.0])
        v3 = v2.with_column("bonus", [10.0, 20.0, 33.0])
        store = TimelineStore()
        for name, table in [("v1", v1), ("v2", v2), ("v3", v3)]:
            store.append(name, table)
        return store

    def test_incremental_report_matches_full_diff_on_changed_attributes(self):
        from repro.diff import diff_snapshots, incremental_diff_report
        from repro.timeline import VersionDelta

        store = self._store()
        pair = store.pair("v1", "v2")
        delta = VersionDelta.from_pair(pair, "v1", "v2")
        incremental = incremental_diff_report(pair, delta)
        full = diff_snapshots(pair, attributes=["pay"])
        assert [str(c) for c in incremental.changes] == [str(c) for c in full.changes]
        assert incremental.attribute_diffs == full.attribute_diffs
        # unchanged attributes are entirely absent, not zero-count rows
        assert [d.attribute for d in incremental.attribute_diffs] == ["pay"]

    def test_timeline_diff_covers_every_hop(self):
        from repro.diff import timeline_diff

        reports = timeline_diff(self._store())
        assert [(s, t) for s, t, _ in reports] == [("v1", "v2"), ("v2", "v3")]
        first, second = reports[0][2], reports[1][2]
        assert first.changed_attributes == ["pay"]
        assert second.changed_attributes == ["bonus"]
        assert first.num_changes == 2 and second.num_changes == 1

    def test_timeline_drift_restricted_to_changed_attributes(self):
        from repro.diff import timeline_drift

        reports = timeline_drift(self._store())
        assert [d.attribute for d in reports[0][2].drifts] == ["pay"]
        assert [d.attribute for d in reports[1][2].drifts] == ["bonus"]

    def test_timeline_drift_empty_hop(self):
        from repro.diff import timeline_drift

        store = self._store()
        store.append("v4", store.checkout("v3"))
        reports = timeline_drift(store)
        assert reports[-1][2].drifts == ()
