"""Shared fixtures: the paper's example data and small generated workloads."""

from __future__ import annotations

import pytest

from repro.core import Charles, CharlesConfig
from repro.relational import SnapshotPair, Table
from repro.workloads import (
    billionaires_pair,
    employee_pair,
    example_pair,
    example_policy,
    example_snapshots,
    montgomery_pair,
)


@pytest.fixture(scope="session")
def fig1_tables() -> tuple[Table, Table]:
    """The exact 2016/2017 snapshots of the paper's Fig. 1."""
    return example_snapshots()


@pytest.fixture(scope="session")
def fig1_pair() -> SnapshotPair:
    """The Fig. 1 snapshots aligned by employee name."""
    return example_pair()


@pytest.fixture(scope="session")
def fig1_policy():
    """The ground-truth rules R1–R3 of Example 1."""
    return example_policy()


@pytest.fixture(scope="session")
def employee_200() -> SnapshotPair:
    """A 200-row generated employee workload evolved by the bonus policy."""
    return employee_pair(200, seed=7)


@pytest.fixture(scope="session")
def montgomery_400() -> SnapshotPair:
    """A 400-row synthetic Montgomery payroll evolved by the COLA policy."""
    return montgomery_pair(400, seed=11)


@pytest.fixture(scope="session")
def billionaires_300() -> SnapshotPair:
    """A 300-row synthetic billionaires list evolved by the market-year policy."""
    return billionaires_pair(300, seed=5)


@pytest.fixture(scope="session")
def default_config() -> CharlesConfig:
    """The out-of-the-box configuration (alpha = 0.5, c = 3, t = 2)."""
    return CharlesConfig()


@pytest.fixture(scope="session")
def fig1_result(fig1_pair):
    """ChARLES run on the paper example with the demo's attribute selections."""
    charles = Charles()
    return charles.summarize_pair(
        fig1_pair,
        "bonus",
        condition_attributes=["edu", "exp", "gen"],
        transformation_attributes=["bonus", "salary"],
    )


@pytest.fixture()
def small_table() -> Table:
    """A tiny mixed-type table used across relational-substrate tests."""
    return Table.from_rows(
        [
            {"id": "a", "city": "Boston", "age": 30, "income": 55000.0, "active": True},
            {"id": "b", "city": "Boston", "age": 41, "income": 72000.0, "active": False},
            {"id": "c", "city": "Salt Lake", "age": 25, "income": 48000.0, "active": True},
            {"id": "d", "city": "Amherst", "age": 58, "income": 91000.0, "active": True},
            {"id": "e", "city": "Amherst", "age": 35, "income": None, "active": False},
        ],
        primary_key="id",
    )
