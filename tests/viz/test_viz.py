"""Unit tests for the text visualisations (tree, treemap, markdown report)."""

import pytest

from repro.viz import (
    render_model_tree,
    render_partition_treemap,
    render_summary_tree,
    result_to_markdown,
)


class TestTreeRendering:
    def test_tree_shows_conditions_and_leaf_models(self, fig1_result):
        text = render_summary_tree(fig1_result.best.summary)
        assert "YES" in text and "NO" in text
        assert "edu" in text
        assert "no change" in text

    def test_tree_of_empty_summary_is_single_leaf(self, fig1_pair):
        from repro.core.summary import ChangeSummary

        text = render_summary_tree(ChangeSummary("bonus", ()))
        assert "no change" in text
        assert "YES" not in text

    def test_render_model_tree_matches_summary_tree(self, fig1_result):
        summary = fig1_result.best.summary
        assert render_model_tree(summary.to_model_tree()) == render_summary_tree(summary)

    def test_each_rule_appears_in_tree(self, fig1_result):
        summary = fig1_result.best.summary
        text = render_summary_tree(summary)
        for ct in summary:
            for name in ct.transformation.feature_names:
                assert name in text


class TestTreemap:
    def test_treemap_lists_partitions_with_coverage(self, fig1_result, fig1_pair):
        text = render_partition_treemap(fig1_result.best.summary, fig1_pair)
        assert "33.3%" in text  # Fig. 4 step 10: top partition coverage
        assert "no change observed" in text
        assert "█" in text and "░" in text

    def test_treemap_reports_partition_accuracy(self, fig1_result, fig1_pair):
        text = render_partition_treemap(fig1_result.best.summary, fig1_pair)
        assert "partition accuracy" in text
        assert "100.0%" in text

    def test_treemap_width_controls_bar_length(self, fig1_result, fig1_pair):
        narrow = render_partition_treemap(fig1_result.best.summary, fig1_pair, width=10)
        wide = render_partition_treemap(fig1_result.best.summary, fig1_pair, width=60)
        assert max(len(line) for line in wide.splitlines()) > max(
            len(line) for line in narrow.splitlines()
        )


class TestMarkdownReport:
    def test_report_contains_all_sections(self, fig1_result):
        report = result_to_markdown(fig1_result)
        assert "# ChARLES change summaries" in report
        assert "## Setup assistant" in report
        assert "## Ranked summaries" in report
        assert "## Summary #1 in detail" in report

    def test_report_lists_every_ranked_summary(self, fig1_result):
        report = result_to_markdown(fig1_result)
        assert report.count("| ") > len(fig1_result.summaries)

    def test_detailed_top_parameter(self, fig1_result):
        report = result_to_markdown(fig1_result, detailed_top=1)
        assert "## Summary #1 in detail" in report
        assert "## Summary #2 in detail" not in report
