"""Tests for the facade conveniences: per-entity explanations and multi-target runs."""

import pytest

from repro.core import Charles
from repro.exceptions import DiscoveryError


class TestExplainEntity:
    def test_explains_a_changed_employee(self, fig1_result):
        text = fig1_result.explain_entity("Anne")
        assert "Anne" in text
        assert "23000" in text and "25150" in text
        assert "rule R" in text
        assert "error 0" in text

    def test_explains_an_unchanged_employee(self, fig1_result):
        text = fig1_result.explain_entity("Cathy")
        assert "no rule applies" in text
        assert "11000" in text

    def test_unknown_entity_rejected(self, fig1_result):
        with pytest.raises(DiscoveryError):
            fig1_result.explain_entity("Nobody")

    def test_every_entity_is_explainable(self, fig1_result, fig1_pair):
        for key in fig1_pair.key_values:
            text = fig1_result.explain_entity(key)
            assert str(key) in text


class TestSummarizeAll:
    def test_covers_every_changed_numeric_attribute(self, fig1_pair):
        results = Charles().summarize_all(fig1_pair)
        assert set(results) == {"exp", "bonus"}
        for target, result in results.items():
            assert result.target == target
            assert result.summaries

    def test_explicit_target_list(self, fig1_pair):
        results = Charles().summarize_all(fig1_pair, targets=["bonus"])
        assert list(results) == ["bonus"]

    def test_exp_change_is_explained_as_plus_one(self, fig1_pair):
        result = Charles().summarize_all(fig1_pair, targets=["exp"])["exp"]
        best = result.best
        # everyone's experience advanced by exactly one year
        assert best.breakdown.accuracy == pytest.approx(1.0)
        assert best.summary.size == 1
        transformation = best.summary.conditional_transformations[0].transformation
        assert transformation.intercept == pytest.approx(1.0)
