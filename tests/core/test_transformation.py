"""Unit tests for linear transformations (the "what" of a CT)."""

import numpy as np
import pytest

from repro.core.transformation import LinearTransformation
from repro.exceptions import ModelFitError
from repro.ml.linreg import fit_linear_model


class TestConstruction:
    def test_identity(self, fig1_tables):
        source, _ = fig1_tables
        identity = LinearTransformation.identity("bonus")
        assert identity.is_identity
        assert np.allclose(identity.apply(source), source.numeric_column("bonus"))

    def test_constant_shift_and_scale(self, fig1_tables):
        source, _ = fig1_tables
        shift = LinearTransformation.constant_shift("bonus", 500.0)
        assert np.allclose(shift.apply(source), source.numeric_column("bonus") + 500.0)
        scale = LinearTransformation.scale("bonus", 1.05, 1000.0)
        assert scale.apply(source)[0] == pytest.approx(1.05 * 23000 + 1000)

    def test_mismatched_coefficients_rejected(self):
        with pytest.raises(ModelFitError):
            LinearTransformation("bonus", ("a", "b"), (1.0,), 0.0)

    def test_from_regression_drops_zero_coefficients(self):
        x = np.linspace(1, 10, 20)
        features = np.column_stack([x, np.zeros(20)])
        model = fit_linear_model(features, 2 * x + 3)
        transformation = LinearTransformation.from_regression(model, ("a", "b"), "y")
        assert transformation.feature_names == ("a",)
        assert transformation.coefficients[0] == pytest.approx(2.0)

    def test_from_regression_unfitted_rejected(self):
        from repro.ml.linreg import LinearRegression

        with pytest.raises(ModelFitError):
            LinearTransformation.from_regression(LinearRegression(), ("a",), "y")

    def test_intercept_only_transformation(self, fig1_tables):
        source, _ = fig1_tables
        constant = LinearTransformation("bonus", (), (), 12345.0)
        assert np.allclose(constant.apply(source), 12345.0)


class TestComplexityAndNormality:
    def test_complexity_counts_terms(self):
        assert LinearTransformation("y", ("a",), (1.05,), 1000.0).complexity == 2
        assert LinearTransformation("y", ("a",), (1.05,), 0.0).complexity == 1
        assert LinearTransformation("y", ("a", "b"), (1.0, 0.0), 0.0).complexity == 1
        assert LinearTransformation.identity("y").complexity == 1

    def test_normality_prefers_round_constants(self):
        round_rule = LinearTransformation("y", ("a",), (1.05,), 1000.0)
        ragged_rule = LinearTransformation("y", ("a",), (1.0487,), 1033.17)
        assert round_rule.normality() > ragged_rule.normality()

    def test_errors_against_actual(self, fig1_tables):
        source, _ = fig1_tables
        rule = LinearTransformation("bonus", ("bonus",), (1.05,), 1000.0)
        actual = rule.apply(source)
        assert np.allclose(rule.errors(source, actual), 0.0)


class TestSnapping:
    def _loss_for(self, source, actual):
        def loss(candidate: LinearTransformation) -> float:
            predictions = candidate.apply(source)
            baseline = float(np.sum(np.abs(actual)))
            return float(np.sum(np.abs(predictions - actual))) / baseline

        return loss

    def test_snaps_near_round_coefficients(self, fig1_tables):
        source, _ = fig1_tables
        truth = LinearTransformation("bonus", ("bonus",), (1.05,), 1000.0)
        actual = truth.apply(source)
        fitted = LinearTransformation("bonus", ("bonus",), (1.0500000231,), 999.99992)
        snapped = fitted.snapped(self._loss_for(source, actual), tolerance=0.001)
        assert snapped.coefficients[0] == pytest.approx(1.05)
        assert snapped.intercept == pytest.approx(1000.0)

    def test_drops_negligible_intercept(self, fig1_tables):
        source, _ = fig1_tables
        actual = 1.05 * source.numeric_column("bonus")
        fitted = LinearTransformation("bonus", ("bonus",), (1.05,), 0.00042)
        snapped = fitted.snapped(self._loss_for(source, actual), tolerance=0.001)
        assert snapped.intercept == 0.0
        assert snapped.complexity == 1

    def test_does_not_snap_when_accuracy_would_suffer(self, fig1_tables):
        source, _ = fig1_tables
        truth = LinearTransformation("bonus", ("bonus",), (1.0487,), 0.0)
        actual = truth.apply(source)
        snapped = truth.snapped(self._loss_for(source, actual), tolerance=1e-6)
        assert snapped.coefficients[0] == pytest.approx(1.0487)

    def test_zero_tolerance_keeps_exact_equivalents_only(self, fig1_tables):
        source, _ = fig1_tables
        truth = LinearTransformation("bonus", ("bonus",), (1.05,), 1000.0)
        actual = truth.apply(source)
        snapped = truth.snapped(self._loss_for(source, actual), tolerance=0.0)
        assert snapped.coefficients[0] == pytest.approx(1.05)
        assert snapped.intercept == pytest.approx(1000.0)


class TestRendering:
    def test_str_formats_equation(self):
        rule = LinearTransformation("bonus", ("bonus",), (1.05,), 1000.0)
        assert str(rule) == "new_bonus = 1.05 x bonus + 1000"

    def test_str_negative_intercept(self):
        rule = LinearTransformation("bonus", ("bonus",), (1.2,), -2000.0)
        assert "- 2000" in str(rule)

    def test_str_identity(self):
        assert "unchanged" in str(LinearTransformation.identity("bonus"))

    def test_to_leaf_model_round_trip(self, fig1_tables):
        source, _ = fig1_tables
        rule = LinearTransformation("bonus", ("bonus", "salary"), (0.5, 0.05), 100.0)
        leaf = rule.to_leaf_model()
        assert np.allclose(leaf.predict(source), rule.apply(source))
        assert leaf.target == "bonus"
