"""Unit tests for configuration validation and the normality prior."""

import math

import pytest

from repro.core.config import CharlesConfig, InterpretabilityWeights
from repro.core.normality import (
    normality_of_values,
    snap_candidates,
    snap_value,
    value_normality,
)
from repro.exceptions import ConfigurationError


class TestCharlesConfig:
    def test_defaults_match_paper(self):
        config = CharlesConfig()
        assert config.alpha == 0.5
        assert config.max_condition_attributes == 3
        assert config.max_transformation_attributes == 2
        assert config.correlation_threshold == 0.5
        assert config.top_k == 10

    @pytest.mark.parametrize(
        "field,value",
        [
            ("alpha", -0.1),
            ("alpha", 1.5),
            ("max_condition_attributes", 0),
            ("max_transformation_attributes", 0),
            ("correlation_threshold", 2.0),
            ("max_partitions", 0),
            ("top_k", 0),
            ("min_partition_coverage", 1.0),
            ("purity_threshold", 0.0),
            ("snapping_tolerance", -1.0),
            ("accuracy_sharpness", 0.0),
            ("residual_weights", ()),
            ("residual_weights", (-1.0,)),
            ("ridge", -1.0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            CharlesConfig(**{field: value})

    def test_replace_creates_modified_copy(self):
        config = CharlesConfig()
        tuned = config.replace(alpha=0.8, top_k=3)
        assert tuned.alpha == 0.8 and tuned.top_k == 3
        assert config.alpha == 0.5

    def test_interpretability_weights_validation(self):
        with pytest.raises(ConfigurationError):
            InterpretabilityWeights(size=-1.0)
        with pytest.raises(ConfigurationError):
            InterpretabilityWeights(size=0, simplicity=0, coverage=0, normality=0)
        assert InterpretabilityWeights(size=2.0).total == pytest.approx(5.0)


class TestNormality:
    @pytest.mark.parametrize("value", [0.0, 1.0, 5.0, 1000.0, 0.05, 1e6])
    def test_single_digit_values_are_maximally_normal(self, value):
        assert value_normality(value) == 1.0

    @pytest.mark.parametrize("value", [25.0, -200.0, 1.05, 750.0])
    def test_two_digit_and_percentage_values_are_highly_normal(self, value):
        assert value_normality(value) >= 0.85

    def test_more_digits_means_less_normal(self):
        assert value_normality(25.0) > value_normality(23.8) > value_normality(23.796)

    def test_pathological_values_are_not_normal(self):
        assert value_normality(float("nan")) == 0.0
        assert value_normality(float("inf")) == 0.0

    def test_paper_examples(self):
        # "Age > 25 is more normal than Age > 23.796"
        assert value_normality(25.0) > value_normality(23.796)
        # "5% is more normal than 2.479%"
        assert value_normality(0.05) > value_normality(0.02479)

    def test_normality_of_values_aggregates(self):
        assert normality_of_values([]) == 1.0
        assert normality_of_values([25.0, 23.796]) == pytest.approx(
            (value_normality(25.0) + value_normality(23.796)) / 2
        )

    def test_snap_candidates_ordered_by_roundness(self):
        candidates = snap_candidates(1.0487)
        assert candidates, "should propose at least one rounder value"
        assert value_normality(candidates[0]) >= value_normality(candidates[-1])
        assert 1.0487 not in candidates

    def test_snap_candidates_for_zero_and_nan(self):
        assert snap_candidates(0.0) == []
        assert snap_candidates(float("nan")) == []

    def test_snap_value_within_tolerance(self):
        assert snap_value(1.0499999, relative_tolerance=0.001) == pytest.approx(1.05)
        # too far away to snap
        assert snap_value(1.37, relative_tolerance=0.001) == 1.37

    def test_snap_value_keeps_exact_round_numbers(self):
        assert snap_value(100.0) == 100.0

    def test_normality_is_scale_invariant_for_round_values(self):
        assert value_normality(5.0) == value_normality(500.0) == value_normality(0.005)

    def test_significant_digit_monotonicity(self):
        ordered = [5.0, 5.3, 5.31, 5.312, 5.3123, 5.31234]
        scores = [value_normality(value) for value in ordered]
        assert all(a >= b for a, b in zip(scores, scores[1:]))
        assert not math.isclose(scores[0], scores[-1])
