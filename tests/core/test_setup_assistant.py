"""Unit tests for the setup assistant (attribute shortlisting)."""

import pytest

from repro.core.config import CharlesConfig
from repro.core.setup_assistant import SetupAssistant
from repro.exceptions import DiscoveryError


class TestSetupAssistant:
    def test_transformation_candidates_are_numeric_and_include_target(self, fig1_pair):
        suggestions = SetupAssistant().suggest(fig1_pair, "bonus")
        names = [s.attribute for s in suggestions.transformation_candidates]
        assert "bonus" in names  # the previous year's value is always a candidate
        assert "edu" not in names and "gen" not in names
        assert suggestions.transformation_candidates[0].attribute == "bonus"

    def test_selected_respect_caps(self, fig1_pair):
        config = CharlesConfig(max_condition_attributes=2, max_transformation_attributes=1)
        suggestions = SetupAssistant(config).suggest(fig1_pair, "bonus")
        assert len(suggestions.selected_condition_attributes) <= 2
        assert len(suggestions.selected_transformation_attributes) == 1

    def test_key_column_never_suggested(self, fig1_pair):
        suggestions = SetupAssistant().suggest(fig1_pair, "bonus")
        all_names = [s.attribute for s in suggestions.condition_candidates]
        assert "name" not in all_names

    def test_education_ranks_high_for_bonus_change(self, fig1_pair):
        suggestions = SetupAssistant().suggest(fig1_pair, "bonus")
        scores = {s.attribute: s.association for s in suggestions.condition_candidates}
        assert scores["edu"] > 0.5
        assert scores["edu"] > scores["gen"]

    def test_threshold_filters_selection(self, fig1_pair):
        strict = CharlesConfig(correlation_threshold=0.99)
        suggestions = SetupAssistant(strict).suggest(fig1_pair, "bonus")
        selected = suggestions.selected_condition_attributes
        # only near-perfect associations survive, but the fallback guarantees at least one
        assert len(selected) >= 1
        assert all(
            s.association > 0.99 or s.selected is False or s.association > 0.0
            for s in suggestions.condition_candidates
        )

    def test_fallback_promotes_top_candidates_when_threshold_rejects_all(self, montgomery_400):
        config = CharlesConfig(correlation_threshold=1.0)
        suggestions = SetupAssistant(config).suggest(montgomery_400, "base_salary")
        assert suggestions.selected_condition_attributes, "fallback should select something"

    def test_non_numeric_target_rejected(self, fig1_pair):
        with pytest.raises(DiscoveryError):
            SetupAssistant().suggest(fig1_pair, "edu")

    def test_describe_mentions_both_lists(self, fig1_pair):
        text = SetupAssistant().suggest(fig1_pair, "bonus").describe()
        assert "condition candidates" in text
        assert "transformation candidates" in text

    def test_associations_bounded(self, billionaires_300):
        suggestions = SetupAssistant().suggest(billionaires_300, "net_worth")
        for suggestion in suggestions.condition_candidates:
            assert 0.0 <= suggestion.association <= 1.0 + 1e-9

    def test_industry_detected_for_billionaires(self, billionaires_300):
        suggestions = SetupAssistant().suggest(billionaires_300, "net_worth")
        assert "industry" in suggestions.selected_condition_attributes
