"""Tests for the diff discovery engine and the Charles facade (integration-leaning)."""

import numpy as np
import pytest

from repro.core import Charles, CharlesConfig, DiffDiscoveryEngine
from repro.evaluation.metrics import rule_recovery
from repro.exceptions import DiscoveryError
from repro.relational.snapshot import SnapshotPair


class TestDiffDiscoveryEngine:
    def test_ranking_is_descending(self, fig1_result):
        scores = [scored.score for scored in fig1_result.summaries]
        assert scores == sorted(scores, reverse=True)

    def test_summaries_are_unique(self, fig1_result):
        described = [scored.summary.describe() for scored in fig1_result.summaries]
        assert len(described) == len(set(described))

    def test_non_numeric_target_rejected(self, fig1_pair):
        with pytest.raises(DiscoveryError):
            DiffDiscoveryEngine().discover(fig1_pair, "edu", ["exp"], ["salary"])

    def test_no_numeric_transformation_attributes_rejected(self, fig1_pair):
        with pytest.raises(DiscoveryError):
            DiffDiscoveryEngine().discover(fig1_pair, "bonus", ["edu"], ["edu"])

    def test_no_change_returns_single_empty_summary(self, fig1_tables):
        source, _ = fig1_tables
        pair = SnapshotPair.align(source, source)
        ranked = DiffDiscoveryEngine().discover(pair, "bonus", ["edu"], ["bonus"])
        assert len(ranked) == 1
        assert ranked[0].summary.size == 0
        assert ranked[0].breakdown.accuracy == 1.0

    def test_includes_global_single_rule_candidate(self, fig1_pair):
        ranked = DiffDiscoveryEngine().discover(
            fig1_pair, "bonus", ["edu", "exp"], ["bonus"]
        )
        assert any(
            scored.summary.size == 1
            and scored.summary.conditional_transformations[0].condition.is_trivial
            for scored in ranked
        )

    def test_respects_max_transformation_attributes(self, fig1_pair):
        config = CharlesConfig(max_transformation_attributes=1)
        ranked = DiffDiscoveryEngine(config).discover(
            fig1_pair, "bonus", ["edu"], ["bonus", "salary"]
        )
        for scored in ranked:
            for ct in scored.summary:
                assert len(ct.transformation.feature_names) <= 1

    def test_respects_max_condition_attributes(self, fig1_pair):
        config = CharlesConfig(max_condition_attributes=1)
        ranked = DiffDiscoveryEngine(config).discover(
            fig1_pair, "bonus", ["edu", "exp", "gen"], ["bonus"]
        )
        for scored in ranked:
            for ct in scored.summary:
                assert len(ct.condition.attributes()) <= 1

    def test_deterministic_given_seed(self, fig1_pair):
        ranked_a = DiffDiscoveryEngine().discover(fig1_pair, "bonus", ["edu", "exp"], ["bonus"])
        ranked_b = DiffDiscoveryEngine().discover(fig1_pair, "bonus", ["edu", "exp"], ["bonus"])
        assert [s.summary.describe() for s in ranked_a] == [s.summary.describe() for s in ranked_b]

    def test_merges_partitions_with_identical_rules(self, employee_200):
        # k = 4 over-partitions the MS group; merging should keep the summary at 3 rules
        ranked = DiffDiscoveryEngine().discover(
            employee_200, "bonus", ["edu", "exp"], ["bonus"]
        )
        best = ranked[0]
        assert best.summary.size <= 4
        assert best.breakdown.accuracy > 0.95


class TestCharlesOnPaperExample:
    def test_best_summary_recovers_ground_truth_rules(self, fig1_result, fig1_pair, fig1_policy):
        recovery = rule_recovery(fig1_result.best.summary, fig1_policy.summary, fig1_pair.source)
        assert recovery.recall == pytest.approx(1.0)
        assert recovery.precision == pytest.approx(1.0)

    def test_best_score_close_to_paper_figure(self, fig1_result):
        # the demo reports 89% for the top summary; we expect the same ballpark
        assert 0.85 <= fig1_result.best.score <= 0.95

    def test_best_summary_covers_the_three_changed_groups(self, fig1_result, fig1_pair):
        coverage = fig1_result.best.summary.coverage(fig1_pair.source)
        assert coverage == pytest.approx(7 / 9)

    def test_top_partition_coverage_is_one_third(self, fig1_result, fig1_pair):
        # Fig. 4 step 10: "33.3% employees fall within the top partition"
        assignments = fig1_result.best.summary.partition_assignments(fig1_pair.source)
        explicit = [a for a in assignments if not a.is_fallback]
        top_share = max(a.size for a in explicit) / fig1_pair.num_rows
        assert top_share == pytest.approx(1 / 3)

    def test_result_reports_ten_summaries_by_default(self, fig1_result):
        assert len(fig1_result.summaries) <= 10
        assert fig1_result.total_candidates >= len(fig1_result.summaries)

    def test_describe_contains_scores_and_rules(self, fig1_result):
        text = fig1_result.describe(limit=2)
        assert "#1" in text and "score=" in text and "IF" in text


class TestCharlesFacade:
    def test_summarize_aligns_tables(self, fig1_tables):
        source, target = fig1_tables
        result = Charles().summarize(source, target, "bonus", key="name")
        assert result.pair.key == "name"
        assert result.best.score > 0.7

    def test_with_config_returns_new_instance(self):
        charles = Charles()
        tuned = charles.with_config(alpha=0.9)
        assert tuned.config.alpha == 0.9
        assert charles.config.alpha == 0.5

    def test_explicit_attribute_lists_are_respected(self, fig1_tables):
        source, target = fig1_tables
        result = Charles().summarize(
            source, target, "bonus",
            key="name",
            condition_attributes=["edu"],
            transformation_attributes=["bonus"],
        )
        assert result.condition_attributes == ("edu",)
        assert result.transformation_attributes == ("bonus",)
        for scored in result.summaries:
            for ct in scored.summary:
                assert set(ct.condition.attributes()) <= {"edu"}
                assert set(ct.transformation.feature_names) <= {"bonus"}

    def test_auto_attribute_selection_used_when_omitted(self, fig1_tables):
        source, target = fig1_tables
        result = Charles().summarize(source, target, "bonus", key="name")
        assert result.condition_attributes  # chosen by the setup assistant
        assert "bonus" in result.transformation_attributes

    def test_suggest_attributes_shortcut(self, fig1_tables):
        source, target = fig1_tables
        suggestions = Charles().suggest_attributes(source, target, "bonus", key="name")
        assert suggestions.target == "bonus"

    def test_top_k_configuration(self, fig1_tables):
        source, target = fig1_tables
        result = Charles(CharlesConfig(top_k=2)).summarize(source, target, "bonus", key="name")
        assert len(result.summaries) <= 2

    def test_alpha_extremes_prefer_different_summaries(self, fig1_pair):
        accurate = Charles(CharlesConfig(alpha=1.0)).summarize_pair(
            fig1_pair, "bonus",
            condition_attributes=["edu", "exp"], transformation_attributes=["bonus"],
        )
        interpretable = Charles(CharlesConfig(alpha=0.0)).summarize_pair(
            fig1_pair, "bonus",
            condition_attributes=["edu", "exp"], transformation_attributes=["bonus"],
        )
        assert accurate.best.breakdown.accuracy >= interpretable.best.breakdown.accuracy
        assert (
            interpretable.best.breakdown.interpretability
            >= accurate.best.breakdown.interpretability
        )


class TestCharlesOnGeneratedWorkloads:
    def test_employee_policy_recovered(self, employee_200):
        from repro.workloads import bonus_policy

        result = Charles().summarize_pair(
            employee_200, "bonus",
            condition_attributes=["edu", "exp", "gen"], transformation_attributes=["bonus"],
        )
        recovery = rule_recovery(result.best.summary, bonus_policy().summary, employee_200.source)
        assert recovery.recall == pytest.approx(1.0)
        assert result.best.breakdown.accuracy > 0.99

    def test_billionaires_policy_recovered(self, billionaires_300):
        from repro.workloads import wealth_policy

        result = Charles().summarize_pair(billionaires_300, "net_worth")
        recovery = rule_recovery(
            result.best.summary, wealth_policy().summary, billionaires_300.source
        )
        assert recovery.recall >= 2 / 3
        assert result.best.breakdown.accuracy > 0.8

    def test_montgomery_summary_beats_doing_nothing(self, montgomery_400):
        result = Charles().summarize_pair(montgomery_400, "base_salary")
        assert result.best.breakdown.accuracy > 0.4
        assert result.best.summary.size >= 1
