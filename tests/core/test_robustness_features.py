"""Tests for the robustness features of the discovery engine.

These cover the mechanisms that keep recovery working on imperfect data:
tolerant numeric threshold induction, hierarchical partition refinement,
merging of equivalent partitions, and outlier-trimmed transformation fitting.
"""

import numpy as np
import pytest

from repro.core import Charles, CharlesConfig
from repro.core.partitioning import _tolerant_threshold_descriptor, induce_condition
from repro.evaluation.metrics import rule_recovery
from repro.workloads import bonus_policy, employee_pair


class TestTolerantThresholdInduction:
    def test_clean_separation_recovers_exact_cut(self):
        members = np.array([5.0, 6.0, 7.0, 8.0])
        rest = np.array([1.0, 2.0, 3.0])
        descriptor = _tolerant_threshold_descriptor("x", members, rest, purity_threshold=0.8)
        assert descriptor is not None
        assert descriptor.mask is not None  # it is a real Descriptor
        assert str(descriptor).startswith("x >= ")

    def test_few_mislabelled_rows_do_not_block_the_cut(self):
        members = np.array([5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 1.5])  # one stray low value
        rest = np.array([1.0, 2.0, 3.0, 4.0, 9.5])  # one stray high value
        descriptor = _tolerant_threshold_descriptor("x", members, rest, purity_threshold=0.8)
        assert descriptor is not None

    def test_hopelessly_mixed_values_yield_nothing(self):
        rng = np.random.default_rng(0)
        members = rng.uniform(0, 10, 50)
        rest = rng.uniform(0, 10, 50)
        assert _tolerant_threshold_descriptor("x", members, rest, purity_threshold=0.8) is None

    def test_identical_values_yield_nothing(self):
        members = np.array([3.0, 3.0])
        rest = np.array([3.0])
        assert _tolerant_threshold_descriptor("x", members, rest, purity_threshold=0.8) is None

    def test_induce_condition_survives_minor_label_noise(self, fig1_pair):
        source = fig1_pair.source
        rows = source.to_rows()
        # the MS & exp>=3 group plus one PhD row wrongly included
        member_indices = [
            i for i, row in enumerate(rows) if row["edu"] == "MS" and row["exp"] >= 3
        ] + [0]
        condition = induce_condition(
            source, np.array(member_indices), ["edu", "exp"], CharlesConfig(purity_threshold=0.7)
        )
        assert not condition.is_trivial


class TestRefinementAndTrimming:
    def test_refinement_recovers_nested_threshold(self):
        """Without refinement the MS experience split is frequently missed."""
        pair = employee_pair(200, seed=7)
        truth = bonus_policy().summary
        with_refinement = Charles(CharlesConfig(refine_partitions=True)).summarize_pair(
            pair, "bonus",
            condition_attributes=["edu", "exp", "gen"], transformation_attributes=["bonus"],
        )
        without_refinement = Charles(CharlesConfig(refine_partitions=False)).summarize_pair(
            pair, "bonus",
            condition_attributes=["edu", "exp", "gen"], transformation_attributes=["bonus"],
        )
        recall_with = rule_recovery(with_refinement.best.summary, truth, pair.source).recall
        recall_without = rule_recovery(without_refinement.best.summary, truth, pair.source).recall
        assert recall_with == 1.0
        assert recall_with >= recall_without
        assert (
            with_refinement.best.breakdown.accuracy
            >= without_refinement.best.breakdown.accuracy - 1e-9
        )

    def test_trimmed_fit_resists_point_noise(self):
        """A few unexplained manual edits must not drag the recovered coefficients."""
        pair = employee_pair(1_000, seed=41, noise_fraction=0.05, noise_scale=0.03)
        result = Charles().summarize_pair(
            pair, "bonus",
            condition_attributes=["edu", "exp", "gen"], transformation_attributes=["bonus"],
        )
        # the PhD rule (largest, cleanest partition) should still be recovered verbatim
        phd_rules = [
            ct for ct in result.best.summary
            if "edu = 'PhD'" in str(ct.condition)
        ]
        assert phd_rules, "expected a PhD rule in the best summary"
        transformation = phd_rules[0].transformation
        assert transformation.coefficients[0] == pytest.approx(1.05, abs=0.005)
        assert transformation.intercept == pytest.approx(1000.0, rel=0.05)

    def test_refinement_disabled_is_still_valid(self, fig1_pair):
        result = Charles(CharlesConfig(refine_partitions=False)).summarize_pair(
            fig1_pair, "bonus",
            condition_attributes=["edu", "exp"], transformation_attributes=["bonus"],
        )
        assert result.summaries
        assert 0.0 <= result.best.score <= 1.0
