"""Tests for exporting change summaries as SQL UPDATE statements."""

import pytest

from repro.core.condition import Condition, Descriptor
from repro.core.sql import condition_to_sql, summary_to_sql_update, transformation_to_sql
from repro.core.summary import ChangeSummary, ConditionalTransformation
from repro.core.transformation import LinearTransformation


class TestConditionToSql:
    def test_trivial_condition(self):
        assert condition_to_sql(Condition.always()) == "TRUE"

    def test_equality_and_threshold(self):
        condition = Condition.of(Descriptor.equals("edu", "MS"), Descriptor.at_least("exp", 3))
        assert condition_to_sql(condition) == "edu = 'MS' AND exp >= 3"

    def test_in_and_not_in(self):
        assert condition_to_sql(Condition.of(Descriptor.in_set("dept", ["POL", "FRS"]))) == (
            "dept IN ('POL', 'FRS')"
        )
        assert "NOT IN" in condition_to_sql(Condition.of(Descriptor.not_in_set("dept", ["POL"])))

    def test_between(self):
        assert condition_to_sql(Condition.of(Descriptor.between("salary", 100, 200))) == (
            "salary BETWEEN 100 AND 200"
        )

    def test_string_values_escaped(self):
        condition = Condition.of(Descriptor.equals("name", "O'Brien"))
        assert "O''Brien" in condition_to_sql(condition)

    def test_mixed_case_identifier_quoted(self):
        condition = Condition.of(Descriptor.equals("Department Name", "Police"))
        assert condition_to_sql(condition).startswith('"Department Name"')


class TestTransformationToSql:
    def test_scale_and_shift(self):
        rule = LinearTransformation("bonus", ("bonus",), (1.05,), 1000.0)
        assert transformation_to_sql(rule) == "1.05 * bonus + 1000"

    def test_unit_coefficient_rendered_without_multiplier(self):
        rule = LinearTransformation("bonus", ("bonus",), (1.0,), 500.0)
        assert transformation_to_sql(rule) == "bonus + 500"

    def test_negative_intercept(self):
        rule = LinearTransformation("bonus", ("bonus",), (1.2,), -2000.0)
        assert transformation_to_sql(rule) == "1.2 * bonus - 2000"

    def test_constant_only(self):
        rule = LinearTransformation("bonus", (), (), 12345.0)
        assert transformation_to_sql(rule) == "12345"


class TestSummaryToSqlUpdate:
    def test_full_update_statement(self, fig1_policy):
        sql = summary_to_sql_update(fig1_policy.summary, "employees")
        assert sql.startswith("UPDATE employees")
        assert "SET bonus = CASE" in sql
        assert sql.count("WHEN") == 3
        assert "WHEN edu = 'PhD' THEN 1.05 * bonus + 1000" in sql
        assert sql.rstrip().endswith("END;")
        assert "ELSE bonus" in sql  # identity fallback preserves unchanged rows

    def test_empty_summary_renders_comment(self):
        sql = summary_to_sql_update(ChangeSummary("bonus", ()), "employees")
        assert sql.startswith("--")

    def test_no_fallback_yields_null_else(self):
        summary = ChangeSummary(
            "bonus",
            (ConditionalTransformation(Condition.always(), LinearTransformation.scale("bonus", 1.1)),),
            identity_fallback=False,
        )
        assert "ELSE NULL" in summary_to_sql_update(summary, "t")

    def test_sql_reproduces_summary_semantics_when_interpreted(self, fig1_pair, fig1_policy):
        """Sanity-check first-match CASE semantics by mimicking the evaluation by hand."""
        summary = fig1_policy.summary
        predictions = summary.apply(fig1_pair.source)
        # interpret the CASE manually: first matching arm wins, reading old values
        for index, row in enumerate(fig1_pair.source.rows()):
            expected = None
            for ct in summary.conditional_transformations:
                if ct.condition.mask(fig1_pair.source)[index]:
                    expected = ct.transformation.apply(fig1_pair.source)[index]
                    break
            if expected is None:
                expected = row["bonus"]
            assert predictions[index] == pytest.approx(expected)
