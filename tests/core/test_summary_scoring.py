"""Unit tests for change summaries and the scoring function."""

import numpy as np
import pytest

from repro.core.condition import Condition, Descriptor
from repro.core.config import CharlesConfig, InterpretabilityWeights
from repro.core.scoring import accuracy, interpretability, score_summary
from repro.core.summary import ChangeSummary, ConditionalTransformation
from repro.core.transformation import LinearTransformation


def _ct(condition, transformation):
    return ConditionalTransformation(condition, transformation)


@pytest.fixture()
def truth_summary(fig1_policy):
    return fig1_policy.summary


class TestChangeSummary:
    def test_apply_reconstructs_target_exactly(self, fig1_pair, truth_summary):
        predictions = truth_summary.apply(fig1_pair.source)
        assert np.allclose(predictions, fig1_pair.target.numeric_column("bonus"))

    def test_first_match_semantics(self, fig1_pair):
        # two overlapping rules: the first one wins for PhD rows
        summary = ChangeSummary(
            "bonus",
            (
                _ct(Condition.of(Descriptor.equals("edu", "PhD")),
                    LinearTransformation.scale("bonus", 2.0)),
                _ct(Condition.always(), LinearTransformation.scale("bonus", 3.0)),
            ),
        )
        predictions = summary.apply(fig1_pair.source)
        bonus = fig1_pair.source.numeric_column("bonus")
        edu = np.array(fig1_pair.source.column("edu"))
        assert np.allclose(predictions[edu == "PhD"], 2.0 * bonus[edu == "PhD"])
        assert np.allclose(predictions[edu != "PhD"], 3.0 * bonus[edu != "PhD"])

    def test_identity_fallback_for_uncovered_rows(self, fig1_pair, truth_summary):
        predictions = truth_summary.apply(fig1_pair.source)
        bonus = fig1_pair.source.numeric_column("bonus")
        edu = np.array(fig1_pair.source.column("edu"))
        assert np.allclose(predictions[edu == "BS"], bonus[edu == "BS"])

    def test_no_fallback_yields_nan(self, fig1_pair):
        summary = ChangeSummary(
            "bonus",
            (_ct(Condition.of(Descriptor.equals("edu", "PhD")),
                 LinearTransformation.identity("bonus")),),
            identity_fallback=False,
        )
        predictions = summary.apply(fig1_pair.source)
        edu = np.array(fig1_pair.source.column("edu"))
        assert np.isnan(predictions[edu != "PhD"]).all()

    def test_partition_assignments_cover_all_rows_exactly_once(self, fig1_pair, truth_summary):
        assignments = truth_summary.partition_assignments(fig1_pair.source)
        stacked = np.vstack([assignment.mask for assignment in assignments])
        assert np.all(stacked.sum(axis=0) == 1)
        assert assignments[-1].is_fallback

    def test_coverage_counts_explicit_rules_only(self, fig1_pair, truth_summary):
        assert truth_summary.coverage(fig1_pair.source) == pytest.approx(7 / 9)

    def test_attribute_listings(self, truth_summary):
        assert truth_summary.condition_attributes == ["edu", "exp"]
        assert truth_summary.transformation_attributes == ["bonus"]
        assert truth_summary.size == 3 and len(truth_summary) == 3

    def test_transformed_table_replaces_target_column(self, fig1_pair, truth_summary):
        transformed = truth_summary.transformed_table(fig1_pair.source)
        assert transformed.column("bonus") == fig1_pair.target.column("bonus")
        # other columns untouched
        assert transformed.column("salary") == fig1_pair.source.column("salary")

    def test_residuals_zero_for_exact_summary(self, fig1_pair, truth_summary):
        assert np.allclose(truth_summary.residuals(fig1_pair), 0.0)

    def test_target_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ChangeSummary(
                "bonus",
                (_ct(Condition.always(), LinearTransformation.identity("salary")),),
            )

    def test_to_model_tree_predicts_identically(self, fig1_pair, truth_summary):
        tree = truth_summary.to_model_tree()
        assert np.allclose(tree.predict(fig1_pair.source), truth_summary.apply(fig1_pair.source))

    def test_describe_lists_rules(self, truth_summary):
        text = truth_summary.describe()
        assert "R1" in text and "R3" in text and "otherwise" in text


class TestAccuracy:
    def test_exact_summary_scores_one(self, fig1_pair, truth_summary):
        assert accuracy(truth_summary, fig1_pair) == pytest.approx(1.0)

    def test_empty_summary_scores_zero_when_changes_exist(self, fig1_pair):
        empty = ChangeSummary("bonus", ())
        assert accuracy(empty, fig1_pair) == pytest.approx(0.0)

    def test_empty_summary_scores_one_when_nothing_changed(self, fig1_tables):
        source, _ = fig1_tables
        from repro.relational.snapshot import SnapshotPair

        pair = SnapshotPair.align(source, source)
        assert accuracy(ChangeSummary("bonus", ()), pair) == 1.0

    def test_sharpness_penalises_residual_error_more(self, fig1_pair):
        partial = ChangeSummary(
            "bonus",
            (_ct(Condition.of(Descriptor.equals("edu", "PhD")),
                 LinearTransformation("bonus", ("bonus",), (1.05,), 1000.0)),),
        )
        linear = accuracy(partial, fig1_pair, sharpness=1.0)
        sharp = accuracy(partial, fig1_pair, sharpness=0.5)
        assert 0.0 < sharp < linear < 1.0

    def test_accuracy_bounded(self, fig1_pair):
        terrible = ChangeSummary(
            "bonus",
            (_ct(Condition.always(), LinearTransformation.scale("bonus", 100.0)),),
        )
        assert accuracy(terrible, fig1_pair) == 0.0


class TestInterpretabilityAndScore:
    def test_smaller_summaries_more_interpretable(self, fig1_pair, truth_summary, default_config):
        single = ChangeSummary(
            "bonus",
            (_ct(Condition.always(), LinearTransformation.scale("bonus", 1.06)),),
        )
        value_single, _ = interpretability(single, fig1_pair, default_config)
        value_truth, _ = interpretability(truth_summary, fig1_pair, default_config)
        assert value_single > value_truth

    def test_components_reported_and_bounded(self, fig1_pair, truth_summary, default_config):
        value, components = interpretability(truth_summary, fig1_pair, default_config)
        assert set(components) == {"size", "simplicity", "coverage", "normality"}
        assert 0.0 <= value <= 1.0
        assert all(0.0 <= component <= 1.0 for component in components.values())
        assert components["coverage"] == pytest.approx(1.0)
        assert components["normality"] == pytest.approx(1.0)

    def test_score_is_alpha_blend(self, fig1_pair, truth_summary):
        config = CharlesConfig(alpha=0.7)
        breakdown = score_summary(truth_summary, fig1_pair, config)
        expected = 0.7 * breakdown.accuracy + 0.3 * breakdown.interpretability
        assert breakdown.score == pytest.approx(expected)

    def test_alpha_one_scores_accuracy_only(self, fig1_pair, truth_summary):
        breakdown = score_summary(truth_summary, fig1_pair, CharlesConfig(alpha=1.0))
        assert breakdown.score == pytest.approx(breakdown.accuracy)

    def test_alpha_zero_scores_interpretability_only(self, fig1_pair, truth_summary):
        breakdown = score_summary(truth_summary, fig1_pair, CharlesConfig(alpha=0.0))
        assert breakdown.score == pytest.approx(breakdown.interpretability)

    def test_custom_interpretability_weights_change_result(self, fig1_pair, truth_summary):
        coverage_only = CharlesConfig(
            interpretability_weights=InterpretabilityWeights(size=0, simplicity=0, coverage=1, normality=0)
        )
        breakdown = score_summary(truth_summary, fig1_pair, coverage_only)
        assert breakdown.interpretability == pytest.approx(1.0)

    def test_paper_example_scores_high(self, fig1_pair, truth_summary, default_config):
        # the demo reports ~0.89 for the ground-truth summary at alpha = 0.5
        breakdown = score_summary(truth_summary, fig1_pair, default_config)
        assert breakdown.score > 0.85
        assert breakdown.accuracy == pytest.approx(1.0)

    def test_breakdown_as_dict_and_str(self, fig1_pair, truth_summary, default_config):
        breakdown = score_summary(truth_summary, fig1_pair, default_config)
        as_dict = breakdown.as_dict()
        assert set(as_dict) >= {"score", "accuracy", "interpretability", "alpha"}
        assert "score=" in str(breakdown)
