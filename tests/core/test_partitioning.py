"""Unit tests for partition discovery and condition induction."""

import numpy as np
import pytest

from repro.core.condition import DescriptorKind
from repro.core.config import CharlesConfig
from repro.core.partitioning import discover_partitions, induce_condition
from repro.relational.snapshot import SnapshotPair


class TestInduceCondition:
    def test_pure_categorical_cluster(self, fig1_pair):
        source = fig1_pair.source
        edu = np.array(source.column("edu"))
        phd_indices = np.nonzero(edu == "PhD")[0]
        condition = induce_condition(source, phd_indices, ["edu", "exp", "gen"])
        assert str(condition) == "edu = 'PhD'"
        assert condition.mask(source).sum() == 3

    def test_categorical_plus_numeric_threshold(self, fig1_pair):
        source = fig1_pair.source
        rows = source.to_rows()
        member_indices = [
            i for i, row in enumerate(rows) if row["edu"] == "MS" and row["exp"] >= 3
        ]
        condition = induce_condition(source, np.array(member_indices), ["edu", "exp"])
        descriptors = {d.attribute: d for d in condition.descriptors}
        assert "edu" in descriptors and "exp" in descriptors
        # the induced condition selects exactly the intended rows
        assert np.array_equal(
            np.nonzero(condition.mask(source))[0], np.array(member_indices)
        )

    def test_ignore_mask_allows_simpler_conditions(self, fig1_pair):
        source = fig1_pair.source
        rows = source.to_rows()
        ms_junior = [i for i, row in enumerate(rows) if row["edu"] == "MS" and row["exp"] < 3]
        ms_senior = np.zeros(source.num_rows, dtype=bool)
        for i, row in enumerate(rows):
            if row["edu"] == "MS" and row["exp"] >= 3:
                ms_senior[i] = True
        with_claim = induce_condition(
            source, np.array(ms_junior), ["edu", "exp"], ignore_mask=ms_senior
        )
        without_claim = induce_condition(source, np.array(ms_junior), ["edu", "exp"])
        assert with_claim.complexity <= without_claim.complexity
        assert "edu = 'MS'" in str(with_claim)

    def test_not_in_set_for_complement_clusters(self, montgomery_400):
        source = montgomery_400.source
        departments = np.array(source.column("department"))
        member_indices = np.nonzero(~np.isin(departments, ["POL", "FRS"]))[0]
        condition = induce_condition(source, member_indices, ["department"])
        kinds = {d.kind for d in condition.descriptors}
        assert kinds <= {DescriptorKind.NOT_IN_SET, DescriptorKind.NOT_EQUALS, DescriptorKind.IN_SET}
        assert condition.mask(source).sum() == member_indices.size

    def test_numeric_only_threshold(self, montgomery_400):
        source = montgomery_400.source
        grades = source.numeric_column("grade")
        member_indices = np.nonzero(grades >= 25)[0]
        condition = induce_condition(source, member_indices, ["grade"])
        assert condition.complexity == 1
        assert np.array_equal(np.nonzero(condition.mask(source))[0], member_indices)

    def test_unhelpful_attributes_are_skipped(self, fig1_pair):
        source = fig1_pair.source
        edu = np.array(source.column("edu"))
        phd_indices = np.nonzero(edu == "PhD")[0]
        condition = induce_condition(source, phd_indices, ["gen"])
        assert condition.is_trivial

    def test_thresholds_are_round(self, montgomery_400):
        source = montgomery_400.source
        grades = source.numeric_column("grade")
        member_indices = np.nonzero(grades >= 25)[0]
        condition = induce_condition(source, member_indices, ["grade"])
        threshold = condition.descriptors[0].values[0]
        assert float(threshold) == int(threshold), "threshold should be a round number"


class TestDiscoverPartitions:
    def test_no_changes_yields_no_partitions(self, fig1_tables):
        source, _ = fig1_tables
        pair = SnapshotPair.align(source, source)
        assert discover_partitions(pair, "bonus", ["edu"], ["bonus"], 3) == []

    def test_partitions_respect_minimum_coverage(self, fig1_pair):
        config = CharlesConfig(min_partition_coverage=0.4)
        partitions = discover_partitions(fig1_pair, "bonus", ["edu", "exp"], ["bonus"], 4, config)
        assert all(partition.coverage >= 0.4 for partition in partitions)

    def test_partitions_are_disjoint_in_first_match_order(self, fig1_pair):
        partitions = discover_partitions(fig1_pair, "bonus", ["edu", "exp"], ["bonus"], 3)
        assert partitions, "expected at least one partition"
        total = np.zeros(fig1_pair.num_rows, dtype=int)
        for partition in partitions:
            total += partition.mask.astype(int)
        assert total.max() <= 1

    def test_k_equal_three_recovers_education_groups(self, fig1_pair):
        partitions = discover_partitions(
            fig1_pair, "bonus", ["edu", "exp", "gen"], ["bonus"], 3, CharlesConfig()
        )
        rendered = " | ".join(str(partition.condition) for partition in partitions)
        assert "edu = 'PhD'" in rendered
        assert "edu = 'MS'" in rendered

    def test_single_partition_request(self, fig1_pair):
        partitions = discover_partitions(fig1_pair, "bonus", ["edu"], ["bonus"], 1)
        assert len(partitions) <= 1

    def test_partition_fields_consistent(self, employee_200):
        partitions = discover_partitions(
            employee_200, "bonus", ["edu", "exp"], ["bonus"], 3, CharlesConfig()
        )
        for partition in partitions:
            assert partition.size == int(partition.mask.sum())
            assert 0.0 <= partition.fidelity <= 1.0
            assert 0.0 <= partition.coverage <= 1.0

    def test_duplicate_conditions_deduplicated(self, employee_200):
        partitions = discover_partitions(
            employee_200, "bonus", ["edu"], ["bonus"], 4, CharlesConfig()
        )
        rendered = [str(partition.condition) for partition in partitions]
        assert len(rendered) == len(set(rendered))
