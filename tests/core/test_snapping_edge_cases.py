"""Edge-case tests for coefficient snapping and wide transformations."""

import numpy as np
import pytest

from repro.core.transformation import LinearTransformation


def _loss_against(actual, source):
    def loss(candidate: LinearTransformation) -> float:
        predictions = candidate.apply(source)
        return float(np.sum(np.abs(predictions - actual))) / float(np.sum(np.abs(actual)))

    return loss


class _MatrixTable:
    """Minimal stand-in exposing the Table surface transformations rely on."""

    def __init__(self, matrix: np.ndarray, names: list[str]):
        self._matrix = matrix
        self._names = names

    @property
    def num_rows(self) -> int:
        return self._matrix.shape[0]

    def numeric_matrix(self, names):
        indices = [self._names.index(name) for name in names]
        return self._matrix[:, indices]


class TestWideTransformationSnapping:
    def test_greedy_snapping_path_for_many_coefficients(self):
        rng = np.random.default_rng(0)
        names = ["a", "b", "c", "d", "e"]
        matrix = rng.uniform(1.0, 10.0, size=(200, 5))
        source = _MatrixTable(matrix, names)
        true_coefficients = (1.0499998, 2.0000003, 0.2500001, 0.7499999, 3.0000002)
        truth = LinearTransformation("y", tuple(names), true_coefficients, 99.9999)
        actual = truth.apply(source)
        snapped = truth.snapped(_loss_against(actual, source), tolerance=0.001)
        # greedy snapping (the combinatorial space exceeds the exhaustive cap)
        # still lands every coefficient on the round value
        assert snapped.coefficients == pytest.approx((1.05, 2.0, 0.25, 0.75, 3.0), abs=1e-6)
        assert snapped.intercept == pytest.approx(100.0, abs=1e-3)

    def test_snapping_never_violates_tolerance(self):
        rng = np.random.default_rng(1)
        matrix = rng.uniform(1.0, 10.0, size=(50, 2))
        source = _MatrixTable(matrix, ["a", "b"])
        fitted = LinearTransformation("y", ("a", "b"), (1.2345, -0.9876), 12.34)
        actual = fitted.apply(source)
        loss = _loss_against(actual, source)
        for tolerance in (0.0, 1e-4, 1e-2):
            snapped = fitted.snapped(loss, tolerance=tolerance)
            assert loss(snapped) <= tolerance + 1e-12

    def test_zero_coefficient_transformation_untouched(self):
        source = _MatrixTable(np.ones((10, 1)), ["a"])
        constant = LinearTransformation("y", ("a",), (0.0,), 5.0)
        actual = constant.apply(source)
        snapped = constant.snapped(_loss_against(actual, source), tolerance=0.01)
        assert snapped.intercept == pytest.approx(5.0)
