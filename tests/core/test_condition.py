"""Unit tests for descriptors and conditions."""

import pytest

from repro.core.condition import Condition, Descriptor, DescriptorKind
from repro.exceptions import ConfigurationError


class TestDescriptor:
    def test_equals_on_categorical(self, fig1_tables):
        source, _ = fig1_tables
        descriptor = Descriptor.equals("edu", "PhD")
        assert descriptor.mask(source).sum() == 3
        assert str(descriptor) == "edu = 'PhD'"

    def test_not_equals(self, fig1_tables):
        source, _ = fig1_tables
        assert Descriptor.not_equals("edu", "PhD").mask(source).sum() == 6

    def test_threshold_descriptors(self, fig1_tables):
        source, _ = fig1_tables
        # 2016 experience values: 2, 3, 5, 1, 2, 4, 3, 4, 1
        assert Descriptor.at_least("exp", 3).mask(source).sum() == 5
        assert Descriptor.less_than("exp", 3).mask(source).sum() == 4

    def test_between_inclusive(self, fig1_tables):
        source, _ = fig1_tables
        descriptor = Descriptor.between("salary", 120000, 160000)
        assert descriptor.mask(source).sum() == 5

    def test_between_rejects_inverted_bounds(self):
        with pytest.raises(ConfigurationError):
            Descriptor.between("salary", 10, 5)

    def test_in_set_and_not_in_set(self, fig1_tables):
        source, _ = fig1_tables
        assert Descriptor.in_set("edu", ["MS", "PhD"]).mask(source).sum() == 7
        assert Descriptor.not_in_set("edu", ["MS", "PhD"]).mask(source).sum() == 2

    def test_in_set_requires_values(self):
        with pytest.raises(ConfigurationError):
            Descriptor.in_set("edu", [])
        with pytest.raises(ConfigurationError):
            Descriptor.not_in_set("edu", [])

    def test_numeric_constants_and_normality(self):
        assert Descriptor.at_least("exp", 3).numeric_constants == [3.0]
        assert Descriptor.equals("edu", "PhD").numeric_constants == []
        assert Descriptor.at_least("exp", 3).normality() == 1.0
        assert Descriptor.at_least("exp", 3).normality() > Descriptor.at_least("exp", 3.2971).normality()

    def test_kind_enum_round_trip(self):
        assert Descriptor.equals("a", 1).kind is DescriptorKind.EQUALS
        assert Descriptor.between("a", 1, 2).kind is DescriptorKind.BETWEEN

    def test_string_rendering_variants(self):
        assert str(Descriptor.less_than("exp", 3)) == "exp < 3"
        assert str(Descriptor.between("exp", 1, 3)) == "exp in [1, 3]"
        assert "not in" in str(Descriptor.not_in_set("dept", ["POL", "FRS"]))


class TestCondition:
    def test_trivial_condition_matches_everything(self, fig1_tables):
        source, _ = fig1_tables
        condition = Condition.always()
        assert condition.is_trivial
        assert condition.mask(source).all()
        assert condition.coverage(source) == 1.0
        assert condition.complexity == 0
        assert str(condition) == "TRUE"
        assert condition.to_expression() is None

    def test_conjunction_semantics(self, fig1_tables):
        source, _ = fig1_tables
        condition = Condition.of(
            Descriptor.equals("edu", "MS"), Descriptor.at_least("exp", 3)
        )
        assert condition.mask(source).sum() == 3
        assert condition.coverage(source) == pytest.approx(3 / 9)
        assert condition.complexity == 2
        assert condition.attributes() == ["edu", "exp"]
        assert str(condition) == "edu = 'MS' AND exp >= 3"

    def test_single_descriptor_expression(self, fig1_tables):
        source, _ = fig1_tables
        condition = Condition.of(Descriptor.equals("edu", "PhD"))
        expression = condition.to_expression()
        assert expression is not None
        assert expression.mask(source).tolist() == condition.mask(source).tolist()

    def test_conjoined_with_appends(self, fig1_tables):
        source, _ = fig1_tables
        base = Condition.of(Descriptor.equals("edu", "MS"))
        extended = base.conjoined_with(Descriptor.less_than("exp", 3))
        assert extended.complexity == 2
        assert extended.mask(source).sum() == 1
        assert base.complexity == 1  # original untouched

    def test_normality_aggregates_descriptor_constants(self):
        clean = Condition.of(Descriptor.at_least("exp", 3))
        ragged = Condition.of(Descriptor.at_least("exp", 3.2971))
        assert clean.normality() > ragged.normality()
        assert Condition.always().normality() == 1.0

    def test_contradictory_condition_selects_nothing(self, fig1_tables):
        source, _ = fig1_tables
        condition = Condition.of(
            Descriptor.equals("edu", "PhD"), Descriptor.equals("edu", "MS")
        )
        assert condition.mask(source).sum() == 0
        assert condition.coverage(source) == 0.0
