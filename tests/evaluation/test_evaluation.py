"""Unit tests for recovery metrics and the experiment harness."""

import numpy as np
import pytest

from repro.core import Charles, CharlesConfig
from repro.core.condition import Condition, Descriptor
from repro.core.summary import ChangeSummary, ConditionalTransformation
from repro.core.transformation import LinearTransformation
from repro.evaluation import (
    ResultTable,
    adjusted_rand_index,
    cell_accuracy,
    evaluate_summary,
    partition_agreement,
    partition_labels,
    rule_recovery,
    run_alpha_sweep,
    run_method_comparison,
    standard_methods,
)


class TestAdjustedRandIndex:
    def test_identical_labelings(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_permuted_labels_still_identical(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([5, 5, 9, 9])
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_independent_labelings_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 3, 3000)
        b = rng.integers(0, 3, 3000)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            adjusted_rand_index(np.array([0, 1]), np.array([0]))

    def test_empty_labelings(self):
        assert adjusted_rand_index(np.array([]), np.array([])) == 1.0


class TestRecoveryMetrics:
    def test_partition_labels_match_rules(self, fig1_pair, fig1_policy):
        labels = partition_labels(fig1_policy.summary, fig1_pair.source)
        assert set(labels.tolist()) == {-1, 0, 1, 2}
        edu = np.array(fig1_pair.source.column("edu"))
        assert set(labels[edu == "BS"]) == {-1}

    def test_partition_agreement_of_identical_summaries(self, fig1_pair, fig1_policy):
        assert partition_agreement(
            fig1_policy.summary, fig1_policy.summary, fig1_pair.source
        ) == pytest.approx(1.0)

    def test_cell_accuracy_exact_summary(self, fig1_pair, fig1_policy):
        assert cell_accuracy(fig1_policy.summary, fig1_pair) == pytest.approx(1.0)

    def test_cell_accuracy_empty_summary(self, fig1_pair):
        assert cell_accuracy(ChangeSummary("bonus", ()), fig1_pair) == 0.0

    def test_rule_recovery_perfect_match(self, fig1_pair, fig1_policy, fig1_result):
        recovery = rule_recovery(fig1_result.best.summary, fig1_policy.summary, fig1_pair.source)
        assert recovery.recall == 1.0 and recovery.precision == 1.0 and recovery.f1 == 1.0

    def test_rule_recovery_is_syntactically_insensitive(self, fig1_pair, fig1_policy):
        # exp >= 2 selects the same MS employees as exp >= 3 on this data
        equivalent = ChangeSummary(
            "bonus",
            (
                ConditionalTransformation(
                    Condition.of(Descriptor.equals("edu", "PhD")),
                    LinearTransformation("bonus", ("bonus",), (1.05,), 1000.0),
                ),
                ConditionalTransformation(
                    Condition.of(Descriptor.equals("edu", "MS"), Descriptor.at_least("exp", 2)),
                    LinearTransformation("bonus", ("bonus",), (1.04,), 800.0),
                ),
                ConditionalTransformation(
                    Condition.of(Descriptor.equals("edu", "MS")),
                    LinearTransformation("bonus", ("bonus",), (1.03,), 400.0),
                ),
            ),
        )
        recovery = rule_recovery(equivalent, fig1_policy.summary, fig1_pair.source)
        assert recovery.recall == 1.0

    def test_rule_recovery_partial(self, fig1_pair, fig1_policy):
        partial = ChangeSummary("bonus", fig1_policy.summary.conditional_transformations[:1])
        recovery = rule_recovery(partial, fig1_policy.summary, fig1_pair.source)
        assert recovery.recall == pytest.approx(1 / 3)
        assert recovery.precision == 1.0
        assert 0.0 < recovery.f1 < 1.0

    def test_rule_recovery_wrong_transformation_not_matched(self, fig1_pair, fig1_policy):
        wrong = ChangeSummary(
            "bonus",
            (
                ConditionalTransformation(
                    Condition.of(Descriptor.equals("edu", "PhD")),
                    LinearTransformation("bonus", ("bonus",), (2.0,), 0.0),
                ),
            ),
        )
        recovery = rule_recovery(wrong, fig1_policy.summary, fig1_pair.source)
        assert recovery.recall == 0.0 and recovery.precision == 0.0

    def test_rule_recovery_empty_summaries(self, fig1_pair):
        empty = ChangeSummary("bonus", ())
        recovery = rule_recovery(empty, empty, fig1_pair.source)
        assert recovery.recall == 1.0 and recovery.precision == 1.0


class TestResultTable:
    def test_add_and_column(self):
        table = ResultTable(["a", "b"], title="demo")
        table.add(a=1, b=0.5)
        table.add(a=2)
        assert table.column("a") == [1, 2]
        assert table.column("b") == [0.5, None]

    def test_text_rendering_aligns_columns(self):
        table = ResultTable(["method", "score"])
        table.add(method="charles", score=0.9123)
        text = table.to_text()
        assert "charles" in text and "0.912" in text

    def test_markdown_rendering(self):
        table = ResultTable(["x"], title="t")
        table.add(x="v")
        markdown = table.to_markdown()
        assert "| x |" in markdown and "| v |" in markdown


class TestHarness:
    def test_evaluate_summary_with_policy(self, fig1_pair, fig1_policy, fig1_result):
        metrics = evaluate_summary(fig1_result.best.summary, fig1_pair, fig1_policy)
        assert metrics["rule_recall"] == 1.0
        assert metrics["cell_accuracy"] == 1.0
        assert 0.0 <= metrics["score"] <= 1.0

    def test_run_method_comparison_covers_all_methods(self, fig1_pair, fig1_policy):
        methods = standard_methods("bonus", ["edu", "exp"], ["bonus"])
        table = run_method_comparison(fig1_pair, fig1_policy, methods, workload="fig1")
        assert set(table.column("method")) == set(methods)
        assert all(seconds >= 0 for seconds in table.column("seconds"))
        charles_row = next(row for row in table.rows if row["method"] == "charles")
        assert charles_row["rule_recall"] == 1.0

    def test_run_alpha_sweep_monotone_tendencies(self, fig1_pair, fig1_policy):
        table = run_alpha_sweep(
            fig1_pair, "bonus", alphas=[0.0, 0.5, 1.0],
            condition_attributes=["edu", "exp"], transformation_attributes=["bonus"],
            policy=fig1_policy,
        )
        accuracies = table.column("accuracy")
        interpretabilities = table.column("interpretability")
        assert accuracies[-1] >= accuracies[0]
        assert interpretabilities[0] >= interpretabilities[-1]
        assert len(table.rows) == 3


class TestTimelineProfile:
    def test_cold_and_warm_rows_tabulated_and_identical(self):
        from repro.core import CharlesConfig
        from repro.evaluation import run_timeline_profile
        from repro.workloads import streaming_employee_timeline

        store, _ = streaming_employee_timeline(60, num_versions=3, seed=21)
        table = run_timeline_profile(
            store, "bonus",
            config=CharlesConfig(max_partitions=2, max_condition_attributes=2, top_k=3),
            condition_attributes=["edu", "exp"],
            transformation_attributes=["bonus"],
        )
        modes = table.column("mode")
        assert modes.count("cold") == 2 and modes.count("warm") == 2
        assert modes[-1] == "warm-session"
        assert all(row["identical"] for row in table.rows)
        assert table.rows[-1]["cache_hit_rate"] > 0
