"""The tracer: span lifecycle, nesting, propagation, sinks, neutrality."""

import json

import pytest

from repro.core import Charles, CharlesConfig
from repro.obs.trace import (
    BufferSink,
    JsonlSink,
    SPAN_ID_BYTES,
    TRACE_ID_BYTES,
    WIRE_CONTEXT_BYTES,
    Span,
    configure_tracing,
    disable_tracing,
    get_tracer,
    new_span_id,
    new_trace_id,
    wire_context,
)


@pytest.fixture(autouse=True)
def _clean_tracer():
    """Every test starts and ends with the process-wide tracer disabled."""
    disable_tracing()
    yield
    disable_tracing()


@pytest.fixture()
def buffered_tracer():
    tracer = get_tracer()
    sink = BufferSink()
    tracer.configure(sink)
    return tracer, sink


class TestDisabled:
    def test_disabled_span_is_shared_noop(self):
        tracer = get_tracer()
        assert not tracer.enabled
        first = tracer.span("a", attr=1)
        second = tracer.span("b")
        assert first is second  # one shared object, no allocation per call
        with first as span:
            span.set(extra=2)  # must not raise

    def test_disabled_tracer_emits_and_propagates_nothing(self):
        tracer = get_tracer()
        tracer.record("late", start=0.0, duration=1.0)
        assert tracer.context() is None
        assert tracer.wire_bytes() == b""
        assert wire_context() == b""


class TestSpans:
    def test_nesting_sets_parent_and_shares_trace(self, buffered_tracer):
        tracer, sink = buffered_tracer
        with tracer.span("outer", layer="search") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        # children finish (and emit) before their parents
        names = [record["name"] for record in sink.records]
        assert names == ["inner", "outer"]
        outer_record = sink.records[1]
        assert outer_record["parent"] is None
        assert outer_record["attributes"] == {"layer": "search"}
        assert outer_record["duration"] >= 0.0

    def test_siblings_share_a_parent_not_each_other(self, buffered_tracer):
        tracer, sink = buffered_tracer
        with tracer.span("parent") as parent:
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        first, second = sink.records[0], sink.records[1]
        assert first["parent"] == parent.span_id
        assert second["parent"] == parent.span_id
        assert first["span"] != second["span"]

    def test_set_attaches_attributes_to_the_live_span(self, buffered_tracer):
        tracer, sink = buffered_tracer
        with tracer.span("round", index=0) as span:
            span.set(survivors=7, floor=None)
        assert sink.records[0]["attributes"] == {
            "index": 0,
            "survivors": 7,
            "floor": None,
        }

    def test_exception_marks_outcome_error_and_propagates(self, buffered_tracer):
        tracer, sink = buffered_tracer
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        record = sink.records[0]
        assert record["outcome"] == "error"
        assert record["attributes"]["error"] == "RuntimeError"

    def test_record_emits_under_the_current_span(self, buffered_tracer):
        tracer, sink = buffered_tracer
        with tracer.span("prefetch") as span:
            tracer.record("fabric.mget", start=123.0, duration=0.5, shard="a:1")
        mget = sink.records[0]
        assert mget["parent"] == span.span_id
        assert mget["start"] == 123.0 and mget["duration"] == 0.5


class TestPropagation:
    def test_wire_bytes_packs_trace_and_parent(self, buffered_tracer):
        tracer, _ = buffered_tracer
        with tracer.span("client") as span:
            packed = tracer.wire_bytes()
            assert len(packed) == WIRE_CONTEXT_BYTES
            assert packed[:TRACE_ID_BYTES].hex() == span.trace_id
            assert packed[TRACE_ID_BYTES:].hex() == span.span_id

    def test_wire_bytes_outside_spans_has_zero_parent(self, buffered_tracer):
        tracer, _ = buffered_tracer
        packed = tracer.wire_bytes()
        assert packed[TRACE_ID_BYTES:] == bytes(SPAN_ID_BYTES)

    def test_adopt_buffers_spans_under_the_remote_parent(self):
        tracer = get_tracer()
        context = (new_trace_id(), new_span_id())
        with tracer.adopt(context) as buffer:
            assert tracer.enabled
            with tracer.span("worker.chunk", pid=1):
                pass
            records = buffer.drain()
        assert not tracer.enabled  # adoption restores the disabled state
        (chunk,) = records
        assert chunk["trace"] == context[0]
        assert chunk["parent"] == context[1]
        assert chunk["process"] == "worker"

    def test_absorb_feeds_foreign_records_to_the_sink(self, buffered_tracer):
        tracer, sink = buffered_tracer
        foreign = Span(
            name="server.get",
            trace_id=tracer.trace_id,
            span_id=new_span_id(),
            parent_id=new_span_id(),
            start=1.0,
            duration=0.001,
            process="server",
        ).as_dict()
        tracer.absorb([foreign])
        assert sink.records == [foreign]


class TestJsonlSink:
    def test_configure_is_idempotent_and_file_holds_valid_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace_id = configure_tracing(str(path))
        assert configure_tracing(str(path / "ignored")) == trace_id
        tracer = get_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        disable_tracing()  # closes the sink, flushing the batched tail
        lines = path.read_text(encoding="utf-8").splitlines()
        records = [json.loads(line) for line in lines]
        assert [record["name"] for record in records] == ["inner", "outer"]
        for record in records:
            assert set(record) == {
                "trace", "span", "parent", "name", "start",
                "duration", "outcome", "process", "attributes",
            }
            assert record["trace"] == trace_id

    def test_batched_writes_reach_the_file_on_flush_and_batch_boundary(self, tmp_path):
        path = tmp_path / "batched.jsonl"
        sink = JsonlSink(str(path))
        sink.emit({"n": 0})
        assert path.read_text(encoding="utf-8") == ""  # buffered, not lost
        sink.flush()
        assert len(path.read_text(encoding="utf-8").splitlines()) == 1
        for n in range(JsonlSink._BATCH):
            sink.emit({"n": n})
        # the batch boundary drains without an explicit flush
        assert len(path.read_text(encoding="utf-8").splitlines()) == 1 + JsonlSink._BATCH
        sink.close()

    def test_disable_is_idempotent(self, tmp_path):
        configure_tracing(str(tmp_path / "t.jsonl"))
        disable_tracing()
        disable_tracing()
        assert not get_tracer().enabled


class TestResultNeutrality:
    def test_rankings_identical_with_tracing_on_and_off(self, employee_200, tmp_path):
        untraced = Charles(CharlesConfig()).summarize_pair(employee_200, "bonus")
        traced = Charles(
            CharlesConfig(trace_path=str(tmp_path / "run.jsonl"))
        ).summarize_pair(employee_200, "bonus")
        disable_tracing()
        assert traced.describe() == untraced.describe()
        assert [s.breakdown.score for s in traced.summaries] == [
            s.breakdown.score for s in untraced.summaries
        ]
        # and the traced run actually produced spans
        text = (tmp_path / "run.jsonl").read_text(encoding="utf-8")
        assert text.strip()

    def test_trace_path_never_enters_the_cache_fingerprint(self, tmp_path):
        plain = CharlesConfig()
        traced = CharlesConfig(trace_path=str(tmp_path / "t.jsonl"))
        assert plain.cache_fingerprint() == traced.cache_fingerprint()
