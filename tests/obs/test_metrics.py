"""The metrics registry: instruments, exposition rendering, the parser."""

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    get_registry,
    parse_prometheus,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        requests = registry.counter("requests_total", "Requests served")
        requests.inc()
        requests.inc(2.5)
        assert requests.value() == 3.5

    def test_labelled_series_are_independent(self, registry):
        specs = registry.counter("specs_total", labels=("status",))
        specs.inc(status="evaluated")
        specs.inc(3, status="pruned")
        assert specs.value(status="evaluated") == 1
        assert specs.value(status="pruned") == 3
        assert specs.value(status="other") == 0

    def test_counters_only_go_up(self, registry):
        counter = registry.counter("ups")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_wrong_label_set_rejected(self, registry):
        specs = registry.counter("specs_total", labels=("status",))
        with pytest.raises(ValueError):
            specs.inc(verb="GET")
        with pytest.raises(ValueError):
            specs.inc()


class TestGauge:
    def test_set_inc_value(self, registry):
        inflight = registry.gauge("inflight")
        inflight.set(5)
        inflight.inc(-2)
        assert inflight.value() == 3


class TestHistogram:
    def test_observe_count_sum(self, registry):
        latency = registry.histogram("latency_seconds", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            latency.observe(value)
        assert latency.count() == 4
        assert latency.sum() == pytest.approx(5.555)

    def test_buckets_render_cumulatively(self, registry):
        latency = registry.histogram("latency_seconds", buckets=(0.01, 0.1))
        for value in (0.005, 0.009, 0.05, 7.0):
            latency.observe(value)
        samples = parse_prometheus(registry.render())
        assert samples['latency_seconds_bucket{le="0.01"}'] == 2
        assert samples['latency_seconds_bucket{le="0.1"}'] == 3
        assert samples['latency_seconds_bucket{le="+Inf"}'] == 4
        assert samples["latency_seconds_count"] == 4

    def test_empty_buckets_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("empty", buckets=())


class TestRegistry:
    def test_get_or_create_returns_the_same_instrument(self, registry):
        first = registry.counter("hits_total")
        second = registry.counter("hits_total")
        assert first is second

    def test_kind_mismatch_on_reregistration_rejected(self, registry):
        registry.counter("traffic")
        with pytest.raises(ValueError):
            registry.gauge("traffic")

    def test_process_wide_registry_is_a_singleton(self):
        assert get_registry() is get_registry()


class TestExposition:
    def test_render_parse_round_trip(self, registry):
        requests = registry.counter("requests_total", "Requests", labels=("verb",))
        requests.inc(4, verb="GET")
        requests.inc(1, verb="PUT")
        registry.gauge("uptime_seconds", "Uptime").set(12.5)
        registry.histogram("rtt_seconds", buckets=(0.1,)).observe(0.05)
        text = registry.render()
        assert "# TYPE requests_total counter" in text
        assert "# HELP requests_total Requests" in text
        samples = parse_prometheus(text)
        assert samples['requests_total{verb="GET"}'] == 4
        assert samples['requests_total{verb="PUT"}'] == 1
        assert samples["uptime_seconds"] == 12.5
        assert samples["rtt_seconds_count"] == 1

    def test_label_values_escaped(self, registry):
        weird = registry.counter("weird_total", labels=("path",))
        weird.inc(path='a"b\\c\nd')
        text = registry.render()
        assert 'path="a\\"b\\\\c\\nd"' in text
        samples = parse_prometheus(text)
        assert samples['weird_total{path="a\\"b\\\\c\\nd"}'] == 1

    def test_default_latency_buckets_are_sorted_and_nonempty(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
        assert DEFAULT_LATENCY_BUCKETS

    @pytest.mark.parametrize(
        "bad",
        ["no_value_here", 'broken{label="x" 3', "name notanumber"],
    )
    def test_parser_rejects_malformed_lines(self, bad):
        with pytest.raises(ValueError):
            parse_prometheus(bad)

    def test_parser_skips_comments_and_blanks(self):
        assert parse_prometheus("# HELP x y\n\n# TYPE x counter\nx 1\n") == {"x": 1.0}
