"""Offline trace analysis: loading, the summary breakdown, the span tree."""

import json

import pytest

from repro.exceptions import CharlesError
from repro.obs.analyze import load_trace, render_tree, summarize_trace


def _span(name, span_id, parent=None, trace="t1", duration=0.0, start=0.0, **attrs):
    return {
        "trace": trace,
        "span": span_id,
        "parent": parent,
        "name": name,
        "start": start,
        "duration": duration,
        "outcome": attrs.pop("outcome", "ok"),
        "process": attrs.pop("process", "engine"),
        "attributes": attrs,
    }


@pytest.fixture()
def search_spans():
    """A miniature two-round search trace with one server-side span."""
    return [
        _span("search", "s1", duration=1.0, start=0.0),
        _span("round", "r1", parent="s1", duration=0.6, start=0.01, index=0, specs=9),
        _span("round", "r2", parent="s1", duration=0.3, start=0.7, index=1, specs=4),
        _span("fit", "f1", parent="r1", duration=0.2, start=0.02),
        _span(
            "server.mget", "m1", parent="r2", duration=0.05, start=0.71,
            process="server", url="shard:1",
        ),
    ]


class TestLoadTrace:
    def test_round_trips_a_jsonl_file(self, tmp_path, search_spans):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "\n".join(json.dumps(span) for span in search_spans), encoding="utf-8"
        )
        assert load_trace(path) == search_spans

    def test_missing_file_raises_charles_error(self, tmp_path):
        with pytest.raises(CharlesError, match="cannot read"):
            load_trace(tmp_path / "absent.jsonl")

    def test_invalid_json_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"span": "a", "name": "x"}\nnot json\n', encoding="utf-8")
        with pytest.raises(CharlesError, match="line 2"):
            load_trace(path)

    def test_non_span_record_rejected(self, tmp_path):
        path = tmp_path / "odd.jsonl"
        path.write_text('{"foo": 1}\n', encoding="utf-8")
        with pytest.raises(CharlesError, match="not a span record"):
            load_trace(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("\n\n", encoding="utf-8")
        with pytest.raises(CharlesError, match="no spans"):
            load_trace(path)


class TestSummarize:
    def test_reports_span_and_round_counts(self, search_spans):
        text = summarize_trace(search_spans)
        assert "trace summary: 5 spans, 1 trace(s), processes: engine, server" in text
        assert "round spans: 2" in text

    def test_self_time_subtracts_children(self, search_spans):
        text = summarize_trace(search_spans)
        # search: 1.0s cumulative, minus its two rounds -> 0.1s self
        line = next(l for l in text.splitlines() if l.startswith("search"))
        assert "1.0000s" in line and "0.1000s" in line

    def test_slowest_rounds_ranked_and_limited(self, search_spans):
        text = summarize_trace(search_spans, slowest=1)
        assert "slowest rounds:" in text
        assert "round 0 (0.6000s" in text
        assert "round 1" not in text

    def test_per_shard_network_time_from_server_spans(self, search_spans):
        text = summarize_trace(search_spans)
        assert "per-shard network time:" in text
        assert "shard:1" in text


class TestRenderTree:
    def test_indentation_follows_parentage(self, search_spans):
        text = render_tree(search_spans)
        lines = text.splitlines()
        assert lines[0] == "trace t1"
        by_name = {line.strip().split(" ")[0]: line for line in lines[1:]}
        indent = {name: len(line) - len(line.lstrip()) for name, line in by_name.items()}
        assert indent["search"] < indent["round"] < indent["fit"]
        assert "[server]" in by_name["server.mget"]

    def test_picks_the_most_populous_trace_by_default(self, search_spans):
        other = [_span("stray", "x1", trace="t2", duration=0.1)]
        text = render_tree(search_spans + other)
        assert text.startswith("trace t1")
        assert "stray" not in text

    def test_explicit_trace_id_selects_and_missing_id_raises(self, search_spans):
        other = [_span("stray", "x1", trace="t2", duration=0.1)]
        assert "stray" in render_tree(search_spans + other, trace_id="t2")
        with pytest.raises(CharlesError, match="not present"):
            render_tree(search_spans, trace_id="t9")

    def test_error_outcome_marked(self, search_spans):
        spans = search_spans + [
            _span("spec", "e1", parent="r1", duration=0.01, outcome="error")
        ]
        assert "!error" in render_tree(spans)
