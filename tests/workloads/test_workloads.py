"""Unit tests for the synthetic workloads and ground-truth policies."""

import numpy as np
import pytest

from repro.core import score_summary
from repro.core.transformation import LinearTransformation
from repro.exceptions import ConfigurationError
from repro.workloads import (
    Policy,
    apply_policy,
    billionaires_pair,
    bonus_policy,
    cola_policy,
    employee_pair,
    evolve_pair,
    example_pair,
    example_policy,
    example_snapshots,
    generate_billionaires,
    generate_employees,
    generate_montgomery_payroll,
    montgomery_pair,
    overtime_policy,
    wealth_policy,
)


class TestExampleWorkload:
    def test_fig1_values_match_paper(self, fig1_tables):
        source, target = fig1_tables
        assert source.num_rows == 9 and target.num_rows == 9
        anne_2016 = source.row(0)
        anne_2017 = target.row(0)
        assert anne_2016["bonus"] == 23000.0 and anne_2017["bonus"] == 25150.0
        assert anne_2016["exp"] == 2 and anne_2017["exp"] == 3
        # 2016 bonus is a flat 10% of salary for everyone
        assert all(row["bonus"] == pytest.approx(0.1 * row["salary"]) for row in source.rows())

    def test_example_policy_reproduces_2017_bonuses(self, fig1_pair, fig1_policy):
        assert score_summary(fig1_policy.summary, fig1_pair).accuracy == pytest.approx(1.0)

    def test_unchanged_rows_are_bs_employees(self, fig1_pair):
        changed = fig1_pair.changed_mask("bonus")
        edu = np.array(fig1_pair.source.column("edu"))
        assert set(edu[~changed]) == {"BS"}

    def test_example_pair_key(self, fig1_pair):
        assert fig1_pair.key == "name"


class TestPolicyApplication:
    def test_apply_policy_changes_only_target(self, fig1_tables, fig1_policy):
        source, _ = fig1_tables
        evolved = apply_policy(source, fig1_policy)
        assert evolved.column("salary") == source.column("salary")
        assert evolved.column("bonus") != source.column("bonus")

    def test_noise_injection_bounded_to_changed_rows(self, fig1_tables, fig1_policy):
        source, _ = fig1_tables
        clean = apply_policy(source, fig1_policy, seed=1)
        noisy = apply_policy(source, fig1_policy, noise_fraction=1.0, noise_scale=0.05, seed=1)
        clean_bonus = np.array(clean.column("bonus"))
        noisy_bonus = np.array(noisy.column("bonus"))
        original = np.array(source.column("bonus"))
        unchanged = clean_bonus == original
        assert np.array_equal(noisy_bonus[unchanged], original[unchanged])
        assert not np.array_equal(noisy_bonus[~unchanged], clean_bonus[~unchanged])

    def test_invalid_noise_parameters_rejected(self, fig1_tables, fig1_policy):
        source, _ = fig1_tables
        with pytest.raises(ConfigurationError):
            apply_policy(source, fig1_policy, noise_fraction=1.5)
        with pytest.raises(ConfigurationError):
            apply_policy(source, fig1_policy, noise_scale=-0.1)

    def test_extra_updates_applied(self, fig1_tables, fig1_policy):
        source, _ = fig1_tables
        evolved = apply_policy(
            source, fig1_policy,
            extra_updates={"exp": LinearTransformation.constant_shift("exp", 1.0)},
        )
        assert evolved.column("exp") == [value + 1 for value in source.column("exp")]

    def test_evolve_pair_returns_aligned_pair(self, fig1_tables, fig1_policy):
        source, _ = fig1_tables
        pair = evolve_pair(source, fig1_policy)
        assert pair.key == "name"
        assert pair.change_fraction("bonus") == pytest.approx(7 / 9)

    def test_policy_from_rules_and_describe(self, fig1_policy):
        assert fig1_policy.num_rules == 3
        text = fig1_policy.describe()
        assert "PhD" in text and "bonus" in text

    def test_policy_rounding(self, fig1_tables):
        source, _ = fig1_tables
        policy = Policy.from_rules(
            "thirds", "bonus",
            [(example_policy().rules[0].condition, LinearTransformation.scale("bonus", 1 / 3))],
        )
        evolved = apply_policy(source, policy, rounding=2)
        assert all(round(v, 2) == v for v in evolved.column("bonus"))


class TestGenerators:
    def test_employee_generator_shape_and_determinism(self):
        first = generate_employees(100, seed=3)
        second = generate_employees(100, seed=3)
        different = generate_employees(100, seed=4)
        assert first.num_rows == 100
        assert first.column("salary") == second.column("salary")
        assert first.column("salary") != different.column("salary")

    def test_employee_bonus_is_flat_rate(self):
        table = generate_employees(50, seed=0, bonus_rate=0.1)
        salary = table.numeric_column("salary")
        bonus = table.numeric_column("bonus")
        assert np.allclose(bonus, 0.1 * salary)

    def test_employee_pair_changes_driven_by_policy(self, employee_200):
        changed = employee_200.changed_mask("bonus")
        edu = np.array(employee_200.source.column("edu"))
        assert set(edu[changed]) <= {"MS", "PhD"}
        assert not changed[edu == "BS"].any()

    def test_employee_pair_policy_is_exactly_recoverable(self, employee_200):
        assert score_summary(bonus_policy().summary, employee_200).accuracy == pytest.approx(1.0)

    def test_montgomery_schema_matches_paper_attributes(self):
        table = generate_montgomery_payroll(50, seed=0)
        assert set(table.column_names) == {
            "employee_id", "department", "department_name", "division", "gender",
            "grade", "base_salary", "overtime_pay", "longevity_pay",
        }
        assert table.primary_key == "employee_id"

    def test_montgomery_policy_accuracy_one(self, montgomery_400):
        assert score_summary(cola_policy().summary, montgomery_400).accuracy == pytest.approx(1.0)

    def test_montgomery_overtime_policy_targets_other_attribute(self):
        assert overtime_policy().target == "overtime_pay"

    def test_billionaires_generator_values_positive(self):
        table = generate_billionaires(80, seed=1)
        assert table.num_rows == 80
        assert min(table.numeric_column("net_worth")) >= 1.0

    def test_billionaires_policy_accuracy_one(self, billionaires_300):
        assert score_summary(wealth_policy().summary, billionaires_300).accuracy > 0.99

    def test_noise_fraction_reduces_policy_accuracy(self):
        clean = employee_pair(300, seed=2, noise_fraction=0.0)
        noisy = employee_pair(300, seed=2, noise_fraction=0.3, noise_scale=0.05)
        truth = bonus_policy().summary
        assert score_summary(truth, noisy).accuracy < score_summary(truth, clean).accuracy

    def test_pairs_have_disjoint_seed_behaviour(self):
        a = montgomery_pair(100, seed=1)
        b = montgomery_pair(100, seed=2)
        assert a.source.column("base_salary") != b.source.column("base_salary")

    def test_billionaires_pair_age_advances(self, billionaires_300):
        delta_age = billionaires_300.delta("age")
        assert np.allclose(delta_age, 1.0)


class TestStreamingWorkload:
    def test_chain_shape_and_policies(self):
        from repro.workloads import streaming_employee_timeline

        store, policies = streaming_employee_timeline(60, num_versions=5, seed=3)
        assert store.names == ["v1", "v2", "v3", "v4", "v5"]
        assert len(policies) == 4
        assert [p.target for p in policies] == ["bonus", "bonus", "bonus", "salary"]
        assert store.key == "name"

    def test_hops_are_localised_to_policy_groups(self):
        from repro.workloads import streaming_employee_timeline

        store, policies = streaming_employee_timeline(80, num_versions=3, seed=3)
        # hop 1 is the PhD wave: only PhD rows' bonuses move
        delta = store.delta("v1", "v2")
        assert delta.changed_attributes == ("bonus",)
        changed = delta.changed_mask("bonus")
        education = store.checkout("v1").column("edu")
        assert all(education[i] == "PhD" for i in range(len(education)) if changed[i])

    def test_condition_attributes_stay_stable_across_versions(self):
        from repro.workloads import streaming_employee_timeline

        store, _ = streaming_employee_timeline(50, num_versions=4, seed=9)
        for attribute in ("edu", "exp", "gen"):
            assert store.checkout("v1").column(attribute) == store.checkout("v4").column(attribute)

    def test_policy_recovery_over_one_hop(self):
        from repro.core import Charles
        from repro.workloads import streaming_employee_timeline

        store, policies = streaming_employee_timeline(150, num_versions=2, seed=3)
        result = Charles().summarize_pair(
            store.pair("v1", "v2"), "bonus",
            condition_attributes=["edu", "exp"], transformation_attributes=["bonus"],
        )
        best = result.best.summary.describe()
        assert "PhD" in best

    def test_invalid_parameters_rejected(self):
        import pytest

        from repro.workloads import streaming_bonus_policies, streaming_employee_timeline

        with pytest.raises(ValueError):
            streaming_employee_timeline(10, num_versions=1)
        with pytest.raises(ValueError):
            streaming_bonus_policies(0)
