"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.condition import Condition, Descriptor
from repro.core.config import CharlesConfig
from repro.core.normality import snap_value, value_normality
from repro.core.scoring import score_summary
from repro.core.summary import ChangeSummary, ConditionalTransformation
from repro.core.transformation import LinearTransformation
from repro.evaluation.metrics import adjusted_rand_index
from repro.ml.kmeans import KMeans
from repro.ml.linreg import fit_linear_model
from repro.relational.csv_io import read_csv_text, write_csv_text
from repro.relational.snapshot import SnapshotPair
from repro.relational.table import Table

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=32
)

educations = st.sampled_from(["BS", "MS", "PhD"])


@st.composite
def employee_tables(draw, min_rows: int = 2, max_rows: int = 40) -> Table:
    """Random employee-like tables with a unique key and positive numerics."""
    n = draw(st.integers(min_rows, max_rows))
    rows = []
    for index in range(n):
        rows.append(
            {
                "id": f"r{index}",
                "edu": draw(educations),
                "exp": draw(st.integers(0, 30)),
                "bonus": float(draw(st.integers(1_000, 50_000))),
            }
        )
    return Table.from_rows(rows, primary_key="id")


@st.composite
def linear_rules(draw) -> LinearTransformation:
    factor = draw(st.floats(min_value=0.5, max_value=1.5, allow_nan=False))
    shift = float(draw(st.integers(-2_000, 2_000)))
    return LinearTransformation("bonus", ("bonus",), (round(factor, 3),), shift)


# ---------------------------------------------------------------------------
# relational invariants
# ---------------------------------------------------------------------------


class TestTableProperties:
    @given(employee_tables())
    @settings(max_examples=30, deadline=None)
    def test_csv_round_trip_preserves_rows(self, table: Table):
        back = read_csv_text(write_csv_text(table), primary_key="id")
        assert back.num_rows == table.num_rows
        assert back.column("edu") == table.column("edu")
        assert back.column("exp") == table.column("exp")
        assert np.allclose(back.numeric_column("bonus"), table.numeric_column("bonus"))

    @given(employee_tables(), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_take_then_mask_consistency(self, table: Table, seed: int):
        rng = np.random.default_rng(seed)
        mask = rng.random(table.num_rows) < 0.5
        masked = table.mask(mask)
        taken = table.take(np.nonzero(mask)[0].tolist())
        assert masked == taken

    @given(employee_tables())
    @settings(max_examples=30, deadline=None)
    def test_group_by_partitions_all_rows(self, table: Table):
        groups = table.group_by(["edu"])
        assert sum(group.num_rows for group in groups.values()) == table.num_rows

    @given(employee_tables())
    @settings(max_examples=30, deadline=None)
    def test_sort_is_permutation(self, table: Table):
        ordered = table.sort_by("bonus")
        assert sorted(ordered.column("id")) == sorted(table.column("id"))
        values = ordered.numeric_column("bonus")
        assert np.all(np.diff(values) >= 0)


# ---------------------------------------------------------------------------
# ML invariants
# ---------------------------------------------------------------------------


class TestModelProperties:
    @given(
        st.lists(finite_floats, min_size=5, max_size=40),
        st.floats(min_value=-5, max_value=5, allow_nan=False),
        st.floats(min_value=-100, max_value=100, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_linear_regression_recovers_exact_line(self, xs, slope, intercept):
        x = np.asarray(xs, dtype=float)
        if np.std(x) < 1e-6:
            return  # constant feature carries no slope information
        y = slope * x + intercept
        model = fit_linear_model(x.reshape(-1, 1), y)
        assert np.allclose(model.predict(x.reshape(-1, 1)), y, atol=1e-3, rtol=1e-3)

    @given(st.integers(1, 5), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_kmeans_labels_are_valid(self, k, seed):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(30, 2))
        result = KMeans(k, seed=seed).fit(points)
        assert result.labels.shape == (30,)
        assert result.labels.min() >= 0 and result.labels.max() < result.k
        assert result.inertia >= 0.0

    @given(st.lists(st.integers(0, 4), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_ari_of_identical_labelings_is_one(self, labels):
        array = np.array(labels)
        assert adjusted_rand_index(array, array) == pytest.approx(1.0)

    @given(finite_floats)
    @settings(max_examples=100, deadline=None)
    def test_normality_is_bounded(self, value):
        assert 0.0 <= value_normality(value) <= 1.0

    @given(finite_floats, st.floats(min_value=0.0, max_value=0.1, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_snap_value_stays_within_tolerance(self, value, tolerance):
        snapped = snap_value(value, relative_tolerance=tolerance)
        assert abs(snapped - value) <= tolerance * max(abs(value), 1e-12) + 1e-12
        assert value_normality(snapped) >= value_normality(value)


# ---------------------------------------------------------------------------
# ChARLES core invariants
# ---------------------------------------------------------------------------


class TestSummaryProperties:
    @given(employee_tables(), linear_rules(), educations)
    @settings(max_examples=30, deadline=None)
    def test_score_components_always_bounded(self, table, rule, education):
        summary = ChangeSummary(
            "bonus",
            (ConditionalTransformation(Condition.of(Descriptor.equals("edu", education)), rule),),
        )
        target_table = summary.transformed_table(table)
        pair = SnapshotPair.align(table, target_table)
        breakdown = score_summary(summary, pair, CharlesConfig())
        assert 0.0 <= breakdown.accuracy <= 1.0
        assert 0.0 <= breakdown.interpretability <= 1.0
        assert 0.0 <= breakdown.score <= 1.0

    @given(employee_tables(), linear_rules(), educations)
    @settings(max_examples=30, deadline=None)
    def test_generating_summary_is_perfectly_accurate(self, table, rule, education):
        summary = ChangeSummary(
            "bonus",
            (ConditionalTransformation(Condition.of(Descriptor.equals("edu", education)), rule),),
        )
        pair = SnapshotPair.align(table, summary.transformed_table(table))
        assert score_summary(summary, pair).accuracy == pytest.approx(1.0)

    @given(employee_tables(), linear_rules(), linear_rules())
    @settings(max_examples=30, deadline=None)
    def test_partition_assignments_are_a_partition(self, table, rule_a, rule_b):
        summary = ChangeSummary(
            "bonus",
            (
                ConditionalTransformation(Condition.of(Descriptor.equals("edu", "PhD")), rule_a),
                ConditionalTransformation(Condition.of(Descriptor.at_least("exp", 10)), rule_b),
            ),
        )
        assignments = summary.partition_assignments(table)
        stacked = np.vstack([assignment.mask for assignment in assignments])
        assert np.all(stacked.sum(axis=0) == 1)

    @given(employee_tables(), linear_rules())
    @settings(max_examples=30, deadline=None)
    def test_model_tree_equivalent_to_summary(self, table, rule):
        summary = ChangeSummary(
            "bonus",
            (ConditionalTransformation(Condition.of(Descriptor.at_least("exp", 5)), rule),),
        )
        tree_predictions = summary.to_model_tree().predict(table)
        assert np.allclose(tree_predictions, summary.apply(table))

    @given(employee_tables())
    @settings(max_examples=20, deadline=None)
    def test_snapshot_alignment_is_order_invariant(self, table):
        rng = np.random.default_rng(0)
        permutation = rng.permutation(table.num_rows).tolist()
        shuffled = table.take(permutation)
        pair = SnapshotPair.align(table, shuffled)
        assert not pair.changed_mask("bonus").any()
        assert not pair.changed_mask("edu").any()
