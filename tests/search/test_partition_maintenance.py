"""Differential property suite for delta-patchable partition maintenance.

The maintenance layer's contract (see :mod:`repro.search.maintenance`) is the
Berkholz-style one: a patched structure must be *indistinguishable* from one
recomputed from scratch.  These tests enforce it at two levels, over random
dataset pairs and random sparse deltas:

* **partition level** — for every spec, the partitions an evaluator produces
  with a maintenance context (patched, fallen back, or recomputed) are
  exactly equal — conditions, masks, fidelity, coverage — to a from-scratch
  ``discover_partitions`` on the new pair;
* **ranking level** — a session serving revised pair states produces rankings
  byte-identical to independent cold runs, whichever branch each spec took.

The delta strategy deliberately mixes the three regimes: revisions on rows
outside the changed set (patchable), revisions hitting the changed rows or
the target attribute (certificate mismatch — the fallback branch), and no-op
revisions (plain content hits).
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Charles, CharlesConfig
from repro.core.partitioning import discover_partitions
from repro.relational.snapshot import SnapshotPair
from repro.relational.table import Table
from repro.search.cache import SearchCaches
from repro.search.evaluator import CandidateEvaluator
from repro.search.maintenance import MaintenanceContext
from repro.timeline import EngineSession

_EDUCATIONS = ["BS", "MS", "PhD"]

# every (condition subset, partition count) pair the unit-level differential
# replays; transformation subset is the target itself, as in a minimal search
_SPEC_GRID = [
    (cond, k)
    for cond in [("edu",), ("exp",), ("edu", "exp")]
    for k in (1, 2, 3)
]


def _roster(draw, n: int) -> Table:
    rows = []
    for index in range(n):
        rows.append(
            {
                "id": f"r{index}",
                "edu": draw(st.sampled_from(_EDUCATIONS)),
                "exp": float(draw(st.integers(0, 12))),
                "bonus": float(draw(st.integers(1_000, 30_000))),
            }
        )
    return Table.from_rows(rows, primary_key="id")


def _apply_policy(draw, table: Table) -> Table:
    """A group-targeted bonus update (the structure discovery should find)."""
    bonus = np.array(table.column("bonus"), dtype=float)
    if draw(st.booleans()):
        group = draw(st.sampled_from(_EDUCATIONS))
        members = np.array([edu == group for edu in table.column("edu")])
    else:
        threshold = draw(st.integers(3, 9))
        members = np.array(table.column("exp"), dtype=float) >= threshold
    factor = draw(st.sampled_from([1.05, 1.1, 1.25]))
    shift = float(draw(st.sampled_from([0, 500, 2000])))
    bonus = np.where(members, np.round(factor * bonus + shift, 2), bonus)
    return table.with_column("bonus", [float(b) for b in bonus])


@st.composite
def revised_pairs(draw) -> tuple[SnapshotPair, SnapshotPair, str]:
    """A base pair plus a sparsely revised successor state of the same pair.

    Revision kinds cover every maintenance branch: ``outside`` corrects
    condition attributes only on rows the policy left untouched (the
    patchable case), ``inside`` corrects them on changed rows and ``target``
    moves the target attribute itself (both force certificate mismatches),
    and ``none`` leaves the pair untouched (pure content hits).
    """
    n = draw(st.integers(10, 18))
    source = _roster(draw, n)
    target_table = _apply_policy(draw, source)
    pair1 = SnapshotPair.align(source, target_table, key="id")
    changed = pair1.changed_mask("bonus")

    kind = draw(st.sampled_from(["outside", "outside", "inside", "target", "none"]))
    new_source, new_target = source, target_table
    candidates = np.nonzero(~changed if kind == "outside" else changed)[0]
    if kind in ("outside", "inside") and candidates.size:
        picks = draw(
            st.lists(st.sampled_from(candidates.tolist()), min_size=1, max_size=3)
        )
        exp = np.array(source.column("exp"), dtype=float)
        edu = list(source.column("edu"))
        for row in picks:
            if draw(st.booleans()):
                exp[row] += 1.0
            else:
                edu[row] = draw(st.sampled_from(_EDUCATIONS))
        new_source = source.with_column("exp", [float(e) for e in exp]).with_column(
            "edu", edu
        )
    elif kind == "target":
        row = draw(st.integers(0, n - 1))
        bonus = np.array(target_table.column("bonus"), dtype=float)
        bonus[row] = round(bonus[row] + 123.0, 2)
        new_target = target_table.with_column("bonus", [float(b) for b in bonus])
    pair2 = SnapshotPair.align(new_source, new_target, key="id")
    return pair1, pair2, kind


def _assert_partitions_equal(got, expected):
    assert len(got) == len(expected)
    for ours, theirs in zip(got, expected):
        assert ours.condition.descriptors == theirs.condition.descriptors
        assert np.array_equal(ours.mask, theirs.mask)
        assert ours.fidelity == theirs.fidelity
        assert ours.coverage == theirs.coverage


class TestPatchedPartitionsEqualFromScratch:
    @given(revised_pairs())
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_differential_per_spec(self, case):
        pair1, pair2, _kind = case
        config = CharlesConfig()
        caches = SearchCaches()
        primer = CandidateEvaluator(pair1, "bonus", config, caches)
        for cond, k in _SPEC_GRID:
            primer._cached_partitions(pair1, primer._full_mask, cond, ("bonus",), k)

        context = MaintenanceContext.between(pair1, pair2, "bonus")
        assert context is not None  # same entities, same order: always maintainable
        evaluator = CandidateEvaluator(pair2, "bonus", config, caches, maintenance=context)
        for cond, k in _SPEC_GRID:
            got = evaluator._cached_partitions(pair2, evaluator._full_mask, cond, ("bonus",), k)
            expected = discover_partitions(pair2, "bonus", cond, ("bonus",), k, config)
            _assert_partitions_equal(got, expected)
        # every miss was resolved exactly one way; the counters must agree
        resolved = (
            caches.partitions_patched
            + caches.partition_patch_fallbacks
            + caches.partitions_recomputed
        )
        assert resolved == caches.partitions.misses

    @given(revised_pairs())
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_patched_entries_are_cached_like_computed_ones(self, case):
        pair1, pair2, _kind = case
        config = CharlesConfig()
        caches = SearchCaches()
        primer = CandidateEvaluator(pair1, "bonus", config, caches)
        primer._cached_partitions(pair1, primer._full_mask, ("edu",), ("bonus",), 2)
        context = MaintenanceContext.between(pair1, pair2, "bonus")
        evaluator = CandidateEvaluator(pair2, "bonus", config, caches, maintenance=context)
        first = evaluator._cached_partitions(pair2, evaluator._full_mask, ("edu",), ("bonus",), 2)
        hits_before = caches.partitions.hits
        second = evaluator._cached_partitions(pair2, evaluator._full_mask, ("edu",), ("bonus",), 2)
        assert caches.partitions.hits == hits_before + 1
        _assert_partitions_equal(second, first)


class TestSessionRankingsStayByteIdentical:
    # small caps keep the candidate space (and runtime) per example modest
    _FAST = dict(max_partitions=2, top_k=3, max_condition_attributes=2)

    @staticmethod
    def _ranking(result):
        return [(s.summary.describe(), s.score) for s in result.summaries]

    @given(revised_pairs())
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_maintained_session_equals_cold_runs(self, case):
        pair1, pair2, _kind = case
        config = CharlesConfig(**self._FAST)
        session = EngineSession(config)
        warm = [
            self._ranking(session.summarize_pair(pair1, "bonus")),
            self._ranking(session.summarize_pair(pair2, "bonus")),
        ]
        cold = [
            self._ranking(Charles(config).summarize_pair(pair1, "bonus")),
            self._ranking(Charles(config).summarize_pair(pair2, "bonus")),
        ]
        assert warm == cold

    @given(revised_pairs())
    @settings(max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_maintained_equals_content_key_only_session(self, case):
        pair1, pair2, _kind = case
        config = CharlesConfig(**self._FAST)
        maintained = EngineSession(config)
        plain = EngineSession(config.replace(partition_maintenance=False))
        for pair in (pair1, pair2):
            assert self._ranking(maintained.summarize_pair(pair, "bonus")) == self._ranking(
                plain.summarize_pair(pair, "bonus")
            )


def _deterministic_case():
    """A fixed pair + revision where patching must fire (no hypothesis)."""
    rng = np.random.default_rng(11)
    n = 400
    edu = rng.choice(_EDUCATIONS, size=n).tolist()
    exp = rng.integers(0, 20, size=n).astype(float)
    salary = np.round(rng.uniform(40_000, 120_000, size=n), 2)
    bonus = np.round(salary * 0.1, 2)
    rows = [
        {
            "id": f"r{i}",
            "edu": edu[i],
            "exp": float(exp[i]),
            "salary": float(salary[i]),
            "bonus": float(bonus[i]),
        }
        for i in range(n)
    ]
    source = Table.from_rows(rows, primary_key="id")
    new_bonus = bonus.copy()
    is_ms = np.array([e == "MS" for e in edu])
    senior = exp >= 12
    new_bonus[is_ms] = np.round(new_bonus[is_ms] * 1.2, 2)
    new_bonus[~is_ms & senior] = np.round(new_bonus[~is_ms & senior] + 1500, 2)
    target_table = source.with_column("bonus", [float(b) for b in new_bonus])
    pair1 = SnapshotPair.align(source, target_table, key="id")

    untouched = np.nonzero(~pair1.changed_mask("bonus"))[0]
    corrected = untouched[:: max(1, untouched.size // 12)]
    edu2 = list(edu)
    for i in corrected:
        edu2[i] = "BS" if edu2[i] != "BS" else "PhD"
    revised = source.with_column("edu", edu2)
    pair2 = SnapshotPair.align(revised, target_table, key="id")
    return pair1, pair2


class TestMaintenanceBranches:
    def test_patching_fires_on_condition_attribute_revisions(self):
        pair1, pair2 = _deterministic_case()
        config = CharlesConfig()
        session = EngineSession(config)
        session.summarize_pair(pair1, "bonus")
        result = session.summarize_pair(pair2, "bonus")
        stats = result.search_stats
        assert stats.partitions_patched > 0
        assert stats.partition_patch_fallbacks == 0
        cold = Charles(config).summarize_pair(pair2, "bonus")
        assert [(s.summary.describe(), s.score) for s in result.summaries] == [
            (s.summary.describe(), s.score) for s in cold.summaries
        ]

    def test_target_touching_delta_falls_back(self):
        pair1, _ = _deterministic_case()
        config = CharlesConfig()
        session = EngineSession(config)
        session.summarize_pair(pair1, "bonus")
        # move the target attribute on one changed row: every certificate must
        # mismatch, and every affected spec must fall back to full discovery
        bonus = np.array(pair1.target.column("bonus"), dtype=float)
        row = int(np.nonzero(pair1.changed_mask("bonus"))[0][0])
        bonus[row] = round(bonus[row] + 77.0, 2)
        shifted = pair1.target.with_column("bonus", [float(b) for b in bonus])
        pair2 = SnapshotPair.align(pair1.source, shifted, key="id")
        result = session.summarize_pair(pair2, "bonus")
        stats = result.search_stats
        assert stats.partitions_patched == 0
        assert stats.partition_patch_fallbacks > 0
        cold = Charles(config).summarize_pair(pair2, "bonus")
        assert [(s.summary.describe(), s.score) for s in result.summaries] == [
            (s.summary.describe(), s.score) for s in cold.summaries
        ]

    def test_patch_records_memoise_both_outcomes(self, monkeypatch):
        from repro.search import evaluator as evaluator_module
        from repro.search.maintenance import PartitionCertificate

        pair1, pair2 = _deterministic_case()
        config = CharlesConfig()
        caches = SearchCaches()
        primer = CandidateEvaluator(pair1, "bonus", config, caches)
        primer._cached_partitions(pair1, primer._full_mask, ("edu",), ("bonus",), 2)
        context = MaintenanceContext.between(pair1, pair2, "bonus")
        evaluator = CandidateEvaluator(pair2, "bonus", config, caches, maintenance=context)
        key = (
            "partition/2",  # the evaluator's versioned value-format prefix
            "bonus",
            ("edu",),
            ("bonus",),
            2,
            1.0,
            evaluator._prints.token(("edu", "bonus"), evaluator._full_mask),
        )
        status, entry = evaluator._try_patch(key, ("edu",), ("bonus",), 2, 1.0)
        assert status == "patched" and entry is not None

        # the outcome is memoised as a PartitionPatchRecord: a second attempt
        # is served from the record — the induction replay must not run again,
        # but the certificate is still re-verified (record reuse is gated on
        # it, so a digest collision can never smuggle in a stale entry)
        def boom(*args, **kwargs):  # pragma: no cover - must never be called
            raise AssertionError("patch record was not used")

        monkeypatch.setattr(evaluator_module, "partitions_from_labels", boom)
        again_status, again_entry = evaluator._try_patch(key, ("edu",), ("bonus",), 2, 1.0)
        assert again_status == "patched"
        _assert_partitions_equal(list(again_entry.partitions), list(entry.partitions))

        # and when the verification cannot pass, the record must NOT be used
        monkeypatch.setattr(
            PartitionCertificate, "matches", lambda self, *args: False
        )
        vetoed_status, vetoed_entry = evaluator._try_patch(key, ("edu",), ("bonus",), 2, 1.0)
        assert vetoed_status == "fallback" and vetoed_entry is None


class TestContextCompatibility:
    def test_incompatible_pairs_yield_no_context(self):
        pair1, _ = _deterministic_case()
        smaller = pair1.restricted(pair1.changed_mask("bonus"))
        assert MaintenanceContext.between(pair1, smaller, "bonus") is None

    def test_identical_pairs_yield_an_empty_delta(self):
        pair1, _ = _deterministic_case()
        context = MaintenanceContext.between(pair1, pair1, "bonus")
        assert context is not None
        assert context.delta.is_empty
