"""The online cost model and its two packing primitives.

The model only steers *scheduling* — worker-chunk packing and prefetch batch
splits — so the contracts here are about coverage and determinism (every
index appears exactly once, ties break the same way every run) plus the
hierarchical back-off of the predictor.  Ranking equivalence of the
cost-routed parallel path rides on the executor differential test at the
bottom.
"""

from __future__ import annotations

import pytest

from repro.core import Charles, CharlesConfig, CharlesResult
from repro.search import build_search_plan
from repro.search.costmodel import OnlineCostModel, batch_indices, pack_indices
from repro.workloads import employee_pair


def _specs():
    plan = build_search_plan(["edu", "exp"], ["bonus"], CharlesConfig())
    return plan.specs


class TestOnlineCostModel:
    def test_cold_model_predicts_the_default(self):
        model = OnlineCostModel()
        spec = _specs()[0]
        assert model.observations == 0
        assert model.predict(spec) > 0.0

    def test_exact_key_wins_over_backoff(self):
        specs = _specs()
        partitioned = [s for s in specs if s.n_partitions is not None]
        a, b = partitioned[0], next(
            s for s in partitioned if s.n_partitions != partitioned[0].n_partitions
        )
        model = OnlineCostModel()
        model.observe(a, 4.0)
        model.observe(b, 0.5)
        assert model.predict(a) == pytest.approx(4.0)
        assert model.predict(b) == pytest.approx(0.5)

    def test_unseen_spec_backs_off_to_coarser_means(self):
        specs = _specs()
        partitioned = [s for s in specs if s.n_partitions is not None]
        model = OnlineCostModel()
        model.observe(partitioned[0], 2.0)
        # a same-kind spec with different shape falls back toward the kind mean
        other = next(
            s
            for s in partitioned
            if s.condition_subset != partitioned[0].condition_subset
        )
        assert model.predict(other) == pytest.approx(2.0)

    def test_nonpositive_observations_are_ignored(self):
        model = OnlineCostModel()
        model.observe(_specs()[0], 0.0)
        model.observe(_specs()[0], -1.0)
        assert model.observations == 0


class TestPackIndices:
    def test_every_index_appears_exactly_once(self):
        costs = [5.0, 1.0, 3.0, 2.0, 4.0, 0.5, 2.5]
        chunks = pack_indices(costs, 3)
        flat = sorted(index for chunk in chunks for index in chunk)
        assert flat == list(range(len(costs)))

    def test_longest_first_balances_chunks(self):
        # classic LPT instance: greedy-by-order packs (8+7, 6+5, 4) = 15/11/4,
        # longest-first packs (8+4, 7+5, 6) = 12/12/6
        costs = [8.0, 7.0, 6.0, 5.0, 4.0]
        chunks = pack_indices(costs, 3)
        loads = sorted(sum(costs[i] for i in chunk) for chunk in chunks)
        assert max(loads) <= 12.0

    def test_deterministic_under_ties(self):
        costs = [1.0] * 8
        assert pack_indices(costs, 3) == pack_indices(costs, 3)

    def test_single_chunk_collapses(self):
        assert pack_indices([1.0, 2.0], 1) == [(0, 1)]

    def test_empty_costs_give_no_chunks(self):
        assert pack_indices([], 4) == []


class TestBatchIndices:
    def test_batches_are_contiguous_and_cover_everything(self):
        costs = [0.4] * 11
        batches = batch_indices(costs, budget_seconds=1.0)
        flat = [index for batch in batches for index in batch]
        assert flat == list(range(11))
        for batch in batches:
            assert list(batch) == list(range(batch[0], batch[-1] + 1))

    def test_budget_splits_but_never_starves(self):
        # each item alone exceeds the budget: one item per batch, never zero
        batches = batch_indices([5.0, 5.0, 5.0], budget_seconds=1.0)
        assert batches == [(0,), (1,), (2,)]

    def test_empty_costs_give_no_batches(self):
        assert batch_indices([], budget_seconds=1.0) == []


class TestCostRoutedEquivalence:
    def _ranking(self, result: CharlesResult):
        return [(s.summary.describe(), s.score) for s in result.summaries]

    def test_routed_parallel_matches_serial(self):
        pair = employee_pair(120, seed=4)
        kwargs = dict(
            condition_attributes=["edu", "exp"], transformation_attributes=["bonus"]
        )
        serial = Charles(CharlesConfig(n_jobs=1, cost_routing=False)).summarize_pair(
            pair, "bonus", **kwargs
        )
        routed = Charles(CharlesConfig(n_jobs=2, cost_routing=True)).summarize_pair(
            pair, "bonus", **kwargs
        )
        assert self._ranking(serial) == self._ranking(routed)
        assert routed.search_stats.cost_routing
        assert not serial.search_stats.cost_routing
