"""Pre-discovery score bounds: admissibility, ranking invariance, no waste.

Three contracts keep ``bound_pruning`` safe to leave on:

* **admissibility** — for every spec the executor could run, the true score of
  whatever summary it produces never exceeds :meth:`ScoreBoundIndex.bound`
  (property-tested over generated pair states);
* **ranking invariance** — turning the knob off changes wall clock only, the
  ranked output is byte-identical;
* **no wasted work** — a spec pruned by its bound reaches neither partition
  discovery nor the prefetch batch, so a remote fabric sees no MGET keys for
  it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cachestore.memory import InProcessBackend
from repro.core import Charles, CharlesConfig
from repro.relational.snapshot import SnapshotPair
from repro.relational.table import Table
from repro.search import GLOBAL, SearchCaches, SerialExecutor, build_search_plan
from repro.search.bounds import ScoreBoundIndex, bound_histogram
from repro.search.evaluator import CandidateEvaluator
from repro.workloads import employee_pair

_EDUCATIONS = ["BS", "MS", "PhD"]


def _ranking(result):
    return [
        (
            scored.summary.describe(),
            scored.score,
            scored.condition_attributes,
            scored.transformation_attributes,
            scored.n_partitions,
        )
        for scored in result.summaries
    ]


@st.composite
def perturbed_pairs(draw) -> SnapshotPair:
    """Employee-like pairs whose bonus evolves by a drawn, messy rule mix.

    Deliberately *not* a clean policy: per-row multipliers, shifts and
    untouched rows are drawn independently, so grouped rows frequently end at
    different targets and the residual floor is exercised away from zero.
    """
    n = draw(st.integers(4, 24))
    rows = []
    new_bonus = []
    for index in range(n):
        bonus = float(draw(st.integers(1, 40)) * 500)
        rows.append(
            {
                "id": f"r{index}",
                "edu": draw(st.sampled_from(_EDUCATIONS)),
                "exp": float(draw(st.integers(0, 4))),
                "bonus": bonus,
            }
        )
        kind = draw(st.integers(0, 3))
        if kind == 0:
            new_bonus.append(bonus)
        elif kind == 1:
            new_bonus.append(round(bonus * draw(st.sampled_from([0.5, 1.2, 2.0])), 2))
        elif kind == 2:
            new_bonus.append(bonus + float(draw(st.integers(-4, 8)) * 250))
        else:
            new_bonus.append(float(draw(st.integers(1, 40)) * 500))
    source = Table.from_rows(rows, primary_key="id")
    target = source.with_column("bonus", new_bonus)
    return SnapshotPair.align(source, target, key="id")


class TestAdmissibility:
    @settings(max_examples=20, deadline=None)
    @given(pair=perturbed_pairs())
    def test_no_achievable_score_exceeds_the_bound(self, pair):
        config = CharlesConfig(max_partitions=2, prune_search=False)
        if not pair.changed_mask("bonus").any():
            return
        plan = build_search_plan(["edu", "exp"], ["bonus"], config)
        index = ScoreBoundIndex(pair, "bonus", config)
        evaluator = CandidateEvaluator(pair, "bonus", config)
        for spec in plan.specs:
            outcome = evaluator.evaluate(spec)
            if outcome.scored is None:
                continue
            assert outcome.scored.score <= index.bound(spec), (
                f"spec {spec} scored {outcome.scored.score} above its "
                f"admissible bound {index.bound(spec)}"
            )

    def test_bound_is_shared_across_partition_counts_and_weights(self):
        pair = employee_pair(80, seed=3)
        config = CharlesConfig()
        plan = build_search_plan(["edu", "exp"], ["bonus"], config)
        index = ScoreBoundIndex(pair, "bonus", config)
        by_union = {}
        for spec in plan.specs:
            union = tuple(dict.fromkeys(spec.condition_subset + spec.transformation_subset))
            record = index.spec_bound(spec)
            assert by_union.setdefault(union, record) is record, (
                "specs sharing an attribute union must share one cached bound"
            )

    def test_unchanged_pair_bounds_at_one(self):
        # a zero baseline means "nothing changed" is already perfect; the
        # ceiling must not divide by it, and the bound stays admissible
        source = employee_pair(30, seed=1).source
        pair = SnapshotPair.align(source, source, key="name")
        index = ScoreBoundIndex(pair, "bonus", CharlesConfig())
        plan = build_search_plan(["edu"], ["bonus"], CharlesConfig())
        record = index.spec_bound(plan.specs[0])
        assert record.baseline == 0.0
        assert record.accuracy_ceiling == 1.0
        assert record.score_bound >= 1.0

    def test_no_usable_rows_bounds_at_one(self):
        rows = [
            {"id": f"r{i}", "edu": _EDUCATIONS[i % 3], "bonus": float("nan")}
            for i in range(6)
        ]
        source = Table.from_rows(rows, primary_key="id")
        target = source.with_column("bonus", [float("nan")] * 6)
        pair = SnapshotPair.align(source, target, key="id")
        index = ScoreBoundIndex(pair, "bonus", CharlesConfig())
        plan = build_search_plan(["edu"], ["bonus"], CharlesConfig())
        record = index.spec_bound(plan.specs[0])
        assert record.accuracy_ceiling == 1.0
        assert record.residual_floor == 0.0

    def test_residual_floor_is_never_negative(self):
        # prefix-sum cancellation must not leak a tiny negative E_min (it
        # would raise a negative float to a fractional power -> complex)
        pair = employee_pair(150, seed=9)
        config = CharlesConfig()
        index = ScoreBoundIndex(pair, "bonus", config)
        for spec in build_search_plan(["edu", "exp"], ["bonus"], config).specs:
            record = index.spec_bound(spec)
            assert record.residual_floor >= 0.0
            assert 0.0 <= record.accuracy_ceiling <= 1.0


class TestRankingInvariance:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_differential_rankings_with_pruning_on_and_off(self, seed):
        pair = employee_pair(150, seed=seed, noise_fraction=0.05)
        kwargs = dict(
            condition_attributes=["edu", "exp"], transformation_attributes=["bonus"]
        )
        on = Charles(CharlesConfig(bound_pruning=True)).summarize_pair(
            pair, "bonus", **kwargs
        )
        off = Charles(CharlesConfig(bound_pruning=False)).summarize_pair(
            pair, "bonus", **kwargs
        )
        assert _ranking(on) == _ranking(off)
        assert on.search_stats.bound_pruning
        assert not off.search_stats.bound_pruning
        assert off.search_stats.candidates_pruned_spec_bounds == 0

    def test_exhaustive_mode_disables_bound_pruning(self):
        # prune_search=False promises an exhaustive enumeration; bound_pruning
        # must not undercut that even when left at its default
        pair = employee_pair(60, seed=2)
        result = Charles(CharlesConfig(prune_search=False)).summarize_pair(
            pair, "bonus",
            condition_attributes=["edu"], transformation_attributes=["bonus"],
        )
        assert not result.search_stats.bound_pruning
        assert result.search_stats.candidates_pruned_spec_bounds == 0


class _RecordingPrefetchBackend(InProcessBackend):
    """An in-process store that pretends to batch wire traffic like the fabric."""

    supports_prefetch = True

    def __init__(self):
        super().__init__()
        self.prefetched: list = []

    def prefetch(self, keys) -> None:
        self.prefetched.extend(keys)


class TestNoWastedPrefetch:
    def _run(self, initial_floor: float):
        pair = employee_pair(100, seed=5)
        config = CharlesConfig(bound_pruning=True, cost_routing=False)
        backend = _RecordingPrefetchBackend()
        caches = SearchCaches(backends=(InProcessBackend(), backend))
        plan = build_search_plan(["edu", "exp"], ["bonus"], config)
        ranked, stats = SerialExecutor().execute(
            pair, "bonus", plan, config, caches=caches, initial_floor=initial_floor
        )
        return plan, ranked, stats, backend

    def test_bound_pruned_specs_send_no_prefetch_keys(self):
        # a floor above every admissible bound prunes the whole plan before
        # discovery: no candidate, no partition lookup, no MGET key
        plan, ranked, stats, backend = self._run(initial_floor=2.0)
        assert ranked == []
        assert stats.candidates_pruned_spec_bounds == len(plan)
        assert backend.prefetched == []
        counters = backend.counters()
        assert counters.hits + counters.misses == 0
        assert counters.round_trips == 0

    def test_surviving_specs_still_prefetch(self):
        plan, ranked, stats, backend = self._run(initial_floor=float("-inf"))
        assert ranked
        assert backend.prefetched  # the open-floor run batches as before
        partitioned = sum(1 for spec in plan.specs if spec.kind != GLOBAL)
        assert len(backend.prefetched) <= partitioned


class TestHistogram:
    def test_empty_plan_renders_placeholder(self):
        assert bound_histogram([]) == "(no specs)"

    def test_buckets_cover_all_bounds(self):
        text = bound_histogram([0.05, 0.05, 0.62, 0.95, 1.2, -0.1])
        counted = sum(int(part.split(":")[1]) for part in text.split())
        assert counted == 6
        assert "0.0-0.1:3" in text  # -0.1 clips into the first bucket
