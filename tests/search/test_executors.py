"""Executor equivalence: serial and parallel searches must rank identically."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Charles, CharlesConfig, DiffDiscoveryEngine
from repro.search import (
    ParallelExecutor,
    SearchCaches,
    SerialExecutor,
    build_search_plan,
    select_executor,
)
from repro.workloads import employee_pair


def _ranking(result):
    """Byte-exact identity of a ranked result: text, scores and provenance."""
    return [
        (
            scored.summary.describe(),
            scored.score,
            scored.condition_attributes,
            scored.transformation_attributes,
            scored.n_partitions,
        )
        for scored in result.summaries
    ]


class TestExecutorSelection:
    def test_serial_for_single_job(self):
        assert isinstance(select_executor(CharlesConfig(n_jobs=1)), SerialExecutor)

    def test_parallel_for_multiple_jobs(self):
        executor = select_executor(CharlesConfig(n_jobs=3))
        assert isinstance(executor, ParallelExecutor)
        assert executor.n_jobs == 3

    def test_parallel_executor_rejects_single_job(self):
        with pytest.raises(ValueError):
            ParallelExecutor(1)


class TestChunking:
    def test_chunks_cover_specs_in_order(self):
        plan = build_search_plan(["edu", "exp"], ["bonus"], CharlesConfig())
        specs = plan.specs
        chunks = ParallelExecutor(2)._chunk(specs)
        assert tuple(spec for chunk in chunks for spec in chunk) == specs
        assert len(chunks) <= 4


class TestSerialParallelEquivalence:
    def test_identical_rankings_on_employee(self, employee_200):
        serial = Charles(CharlesConfig(n_jobs=1)).summarize_pair(
            employee_200, "bonus",
            condition_attributes=["edu", "exp"], transformation_attributes=["bonus"],
        )
        parallel = Charles(CharlesConfig(n_jobs=2)).summarize_pair(
            employee_200, "bonus",
            condition_attributes=["edu", "exp"], transformation_attributes=["bonus"],
        )
        assert _ranking(serial) == _ranking(parallel)
        assert serial.total_candidates == parallel.total_candidates

    def test_identical_rankings_on_billionaires(self, billionaires_300):
        serial = Charles(CharlesConfig(n_jobs=1)).summarize_pair(billionaires_300, "net_worth")
        parallel = Charles(CharlesConfig(n_jobs=2)).summarize_pair(billionaires_300, "net_worth")
        assert _ranking(serial) == _ranking(parallel)

    def test_identical_full_ranked_lists(self, fig1_pair):
        args = (fig1_pair, "bonus", ["edu", "exp", "gen"], ["bonus", "salary"])
        serial = DiffDiscoveryEngine(CharlesConfig(n_jobs=1)).discover(*args)
        parallel = DiffDiscoveryEngine(CharlesConfig(n_jobs=2)).discover(*args)
        assert [s.summary.structural_key() for s in serial] == [
            s.summary.structural_key() for s in parallel
        ]
        assert [s.score for s in serial] == [s.score for s in parallel]

    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_property_equivalence_on_generated_employee_workloads(self, seed):
        pair = employee_pair(60, seed=seed)
        serial = Charles(CharlesConfig(n_jobs=1)).summarize_pair(
            pair, "bonus",
            condition_attributes=["edu", "exp"], transformation_attributes=["bonus"],
        )
        parallel = Charles(CharlesConfig(n_jobs=2)).summarize_pair(
            pair, "bonus",
            condition_attributes=["edu", "exp"], transformation_attributes=["bonus"],
        )
        assert _ranking(serial) == _ranking(parallel)


class TestParallelFallback:
    def test_broken_pool_falls_back_to_serial_with_identical_results(self, fig1_pair):
        config = CharlesConfig(n_jobs=2)
        plan = build_search_plan(["edu", "exp"], ["bonus"], config)
        executor = ParallelExecutor(2)
        executor._setup(fig1_pair, "bonus", config)
        try:
            with pytest.warns(RuntimeWarning, match="falling back to serial"):
                executor._fall_back_to_serial(RuntimeError("worker died"))
            assert executor._effective_n_jobs() == 1
            outcomes, _ = executor._run_round(plan.rounds[1], float("-inf"), frozenset())
        finally:
            executor._teardown()
        serial = SerialExecutor()
        serial._setup(fig1_pair, "bonus", config)
        expected, _ = serial._run_round(plan.rounds[1], float("-inf"), frozenset())
        assert [o.spec for o in outcomes] == [o.spec for o in expected]
        assert [o.scored.score if o.scored else None for o in outcomes] == [
            o.scored.score if o.scored else None for o in expected
        ]

    def test_stats_report_effective_jobs_after_fallback(self, fig1_pair):
        config = CharlesConfig(n_jobs=2)
        plan = build_search_plan(["edu"], ["bonus"], config)
        executor = ParallelExecutor(2)
        original_setup = executor._setup

        def broken_setup(pair, target, cfg, caches=None, maintenance=None):
            original_setup(pair, target, cfg, caches, maintenance)
            with pytest.warns(RuntimeWarning):
                executor._fall_back_to_serial(RuntimeError("simulated pool loss"))

        executor._setup = broken_setup
        ranked, stats = executor.execute(fig1_pair, "bonus", plan, config)
        assert ranked
        assert stats.n_jobs == 1


class TestInitialFloor:
    """The warm-start seed: a sound floor must not change the top-k."""

    def _execute(self, pair, config, initial_floor, caches=None):
        plan = build_search_plan(["edu", "exp"], ["bonus", "salary"], config)
        executor = SerialExecutor()
        return executor.execute(
            pair, "bonus", plan, config, caches=caches, initial_floor=initial_floor
        )

    def test_sound_seed_preserves_topk_and_prunes_more(self, fig1_pair):
        config = CharlesConfig()
        cold_ranked, cold_stats = self._execute(fig1_pair, config, float("-inf"))
        kth = cold_ranked[: config.top_k][-1].score
        seeded_ranked, seeded_stats = self._execute(fig1_pair, config, kth - 1e-9)
        cold_top = [(s.summary.structural_key(), s.score) for s in cold_ranked[: config.top_k]]
        seeded_top = [
            (s.summary.structural_key(), s.score) for s in seeded_ranked[: config.top_k]
        ]
        assert seeded_top == cold_top
        assert seeded_stats.candidates_pruned_bounds >= cold_stats.candidates_pruned_bounds
        assert seeded_stats.warm_started and seeded_stats.warm_start_floor == kth - 1e-9
        assert not cold_stats.warm_started

    def test_seeded_floor_never_drops_below_seed(self, fig1_pair):
        # every ranked survivor scored at least as well as its round's floor
        # allowed; the seed bounds what can appear at the very bottom
        config = CharlesConfig(top_k=3)
        ranked, _ = self._execute(fig1_pair, config, 0.99)
        assert all(s.score >= 0.0 for s in ranked)

    def test_shared_caches_are_used_by_serial_executor(self, fig1_pair):
        config = CharlesConfig()
        caches = SearchCaches()
        self._execute(fig1_pair, config, float("-inf"), caches=caches)
        first = caches.counters()
        assert first.fit_misses > 0
        # the same search again: all lookups must hit the shared caches
        self._execute(fig1_pair, config, float("-inf"), caches=caches)
        second = caches.counters()
        assert second.fit_misses == first.fit_misses
        assert second.partition_misses == first.partition_misses
        assert second.fit_hits > first.fit_hits


class TestSearchStatsThreading:
    def test_result_carries_search_stats(self, fig1_result):
        stats = fig1_result.search_stats
        assert stats is not None
        assert stats.candidates_enumerated > 0
        assert stats.candidates_enumerated == (
            stats.candidates_evaluated + stats.candidates_pruned
        )

    def test_no_change_result_still_has_stats(self, fig1_tables):
        from repro.relational.snapshot import SnapshotPair

        source, _ = fig1_tables
        pair = SnapshotPair.align(source, source)
        result = Charles().summarize_pair(pair, "bonus")
        assert result.search_stats is not None
        assert result.search_stats.candidates_enumerated == 0

    def test_stats_describe_and_as_dict(self, fig1_result):
        stats = fig1_result.search_stats
        text = stats.describe()
        assert "candidates planned" in text and "jobs=" in text
        payload = stats.as_dict()
        assert payload["candidates_enumerated"] == stats.candidates_enumerated
        assert 0.0 <= payload["cache_hit_rate"] <= 1.0


class TestStructuralDeduplication:
    def test_rankings_contain_no_structural_duplicates(self, fig1_pair):
        ranked = DiffDiscoveryEngine().discover(
            fig1_pair, "bonus", ["edu", "exp"], ["bonus", "salary"]
        )
        keys = [scored.summary.structural_key() for scored in ranked]
        assert len(keys) == len(set(keys))

    def test_structural_key_ignores_formatting_but_not_structure(self, fig1_result):
        best = fig1_result.best.summary
        assert best.structural_key() == best.structural_key()
        trimmed = best.__class__(
            best.target,
            best.conditional_transformations[:-1],
            identity_fallback=best.identity_fallback,
        )
        assert trimmed.structural_key() != best.structural_key()
