"""Tests for the search planner: enumeration, rounds, immutability."""

import pytest

from repro.core.config import CharlesConfig
from repro.exceptions import ConfigurationError
from repro.search import (
    GLOBAL,
    PARTITIONED,
    CandidateSpec,
    attribute_subsets,
    build_search_plan,
)


class TestAttributeSubsets:
    def test_all_subsets_up_to_cap(self):
        subsets = attribute_subsets(["a", "b", "c"], 2)
        assert subsets == [("a",), ("b",), ("c",), ("a", "b"), ("a", "c"), ("b", "c")]

    def test_duplicates_removed_order_preserved(self):
        assert attribute_subsets(["b", "a", "b"], 1) == [("b",), ("a",)]

    def test_cap_larger_than_attribute_count(self):
        assert len(attribute_subsets(["a", "b"], 5)) == 3


class TestBuildSearchPlan:
    def test_counts_match_search_space(self):
        config = CharlesConfig(
            max_condition_attributes=2,
            max_transformation_attributes=1,
            max_partitions=3,
            residual_weights=(1.0, 4.0),
        )
        plan = build_search_plan(["edu", "exp"], ["bonus", "salary"], config)
        n_condition_subsets = 3  # (edu,), (exp,), (edu, exp)
        n_transformation_subsets = 2
        expected = n_transformation_subsets + (
            n_condition_subsets * n_transformation_subsets * 3 * 2
        )
        assert len(plan) == expected
        assert plan.num_rounds == 1 + 3

    def test_first_round_is_global_specs(self):
        plan = build_search_plan(["edu"], ["bonus", "salary"], CharlesConfig())
        assert all(spec.kind == GLOBAL for spec in plan.rounds[0])
        assert [spec.transformation_subset for spec in plan.rounds[0]] == [
            ("bonus",), ("salary",), ("bonus", "salary"),
        ]

    def test_rounds_group_by_partition_count(self):
        plan = build_search_plan(["edu"], ["bonus"], CharlesConfig(max_partitions=3))
        for k, round_specs in enumerate(plan.rounds[1:], start=1):
            assert round_specs, "partitioned rounds must not be empty"
            assert all(spec.kind == PARTITIONED for spec in round_specs)
            assert all(spec.n_partitions == k for spec in round_specs)

    def test_no_condition_attributes_yields_only_global_round(self):
        plan = build_search_plan([], ["bonus"], CharlesConfig())
        assert plan.num_rounds == 1
        assert len(plan) == 1

    def test_specs_are_hashable_and_frozen(self):
        plan = build_search_plan(["edu"], ["bonus"], CharlesConfig())
        spec = plan.specs[0]
        assert spec in set(plan.specs)
        with pytest.raises(AttributeError):
            spec.n_partitions = 99

    def test_describe_mentions_rounds_and_counts(self):
        plan = build_search_plan(["edu"], ["bonus"], CharlesConfig())
        text = plan.describe()
        assert "round 0 (global)" in text
        assert f"{len(plan)} candidate specs" in text

    def test_deterministic_enumeration(self):
        config = CharlesConfig()
        plan_a = build_search_plan(["edu", "exp"], ["bonus"], config)
        plan_b = build_search_plan(["edu", "exp"], ["bonus"], config)
        assert plan_a.specs == plan_b.specs


class TestSpecDescribe:
    def test_global_and_partitioned_renderings(self):
        assert "global" in CandidateSpec(GLOBAL, (), ("bonus",), 1, 1.0).describe()
        text = CandidateSpec(PARTITIONED, ("edu",), ("bonus",), 3, 4.0).describe()
        assert "k=3" in text and "w=4" in text


class TestConfigValidation:
    def test_n_jobs_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            CharlesConfig(n_jobs=0)
        with pytest.raises(ConfigurationError):
            CharlesConfig(n_jobs=-2)

    def test_n_jobs_default_is_serial(self):
        assert CharlesConfig().n_jobs == 1

    def test_prune_search_defaults_on(self):
        assert CharlesConfig().prune_search is True


class TestPlanCaching:
    def test_spec_count_matches_materialised_specs(self):
        plan = build_search_plan(["edu", "exp"], ["bonus"], CharlesConfig())
        assert plan.spec_count == len(plan.specs) == len(plan)

    def test_round_sizes_match_rounds(self):
        plan = build_search_plan(["edu", "exp"], ["bonus"], CharlesConfig())
        assert list(plan.round_sizes) == [len(r) for r in plan.rounds]
        assert sum(plan.round_sizes) == plan.spec_count

    def test_specs_tuple_is_cached_not_rebuilt(self):
        # cached_property: repeated access must return the same object, not a
        # fresh tuple per call (describe()/len() used to rebuild it each time)
        plan = build_search_plan(["edu", "exp"], ["bonus"], CharlesConfig())
        assert plan.specs is plan.specs
        assert plan.round_sizes is plan.round_sizes

    def test_iteration_is_lazy_and_ordered(self):
        plan = build_search_plan(["edu"], ["bonus"], CharlesConfig())
        iterated = tuple(iter(plan))
        assert iterated == plan.specs
