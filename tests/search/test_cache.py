"""Tests for the memo caches and search pruning guarantees."""

import numpy as np
import pytest

from repro.core.config import CharlesConfig
from repro.core.discovery import DiffDiscoveryEngine
from repro.search import MemoCache, SearchCaches, mask_digest


class TestMemoCache:
    def test_miss_then_hit(self):
        cache = MemoCache()
        calls = []
        assert cache.get_or_compute("k", lambda: calls.append(1) or 41) == 41
        assert cache.get_or_compute("k", lambda: calls.append(1) or 99) == 41
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_none_is_a_cacheable_value(self):
        cache = MemoCache()
        calls = []
        assert cache.get_or_compute("k", lambda: calls.append(1)) is None
        assert cache.get_or_compute("k", lambda: calls.append(1)) is None
        assert len(calls) == 1
        assert cache.hits == 1

    def test_clear_preserves_counters(self):
        cache = MemoCache()
        cache.get_or_compute("k", lambda: 1)
        cache.clear()
        assert len(cache) == 0 and cache.misses == 1
        cache.get_or_compute("k", lambda: 2)
        assert cache.misses == 2


class TestMaskDigest:
    def test_distinct_masks_distinct_digests(self):
        a = np.array([True, False, True])
        b = np.array([True, True, False])
        assert mask_digest(a) != mask_digest(b)
        assert mask_digest(a) == mask_digest(a.copy())

    def test_non_contiguous_mask_supported(self):
        mask = np.zeros((4, 2), dtype=bool)[:, 0]
        assert mask_digest(mask) == mask_digest(np.zeros(4, dtype=bool))


class TestSearchCaches:
    def test_counters_delta_arithmetic(self):
        caches = SearchCaches()
        before = caches.counters()
        caches.fits.get_or_compute("a", lambda: 1)
        caches.fits.get_or_compute("a", lambda: 1)
        caches.partitions.get_or_compute("p", lambda: [])
        delta = caches.counters() - before
        assert (delta.fit_hits, delta.fit_misses) == (1, 1)
        assert (delta.partition_hits, delta.partition_misses) == (0, 1)


class TestEngineCacheBehaviour:
    def test_search_reuses_fits_across_specs(self, fig1_pair):
        _, stats = DiffDiscoveryEngine().discover_with_stats(
            fig1_pair, "bonus", ["edu", "exp"], ["bonus", "salary"]
        )
        assert stats.fit_cache_hits > 0
        assert stats.partition_cache_misses > 0
        assert 0.0 < stats.cache_hit_rate < 1.0

    def test_stats_account_for_every_spec(self, fig1_pair):
        _, stats = DiffDiscoveryEngine().discover_with_stats(
            fig1_pair, "bonus", ["edu", "exp"], ["bonus"]
        )
        assert stats.candidates_enumerated == stats.candidates_evaluated + stats.candidates_pruned
        assert stats.wall_time_seconds > 0.0
        assert stats.rounds >= 2


class TestPruningSafety:
    @pytest.mark.parametrize("fixture_name,target,conditions,transformations", [
        ("fig1_pair", "bonus", ["edu", "exp", "gen"], ["bonus", "salary"]),
        ("employee_200", "bonus", ["edu", "exp"], ["bonus"]),
    ])
    def test_pruning_never_drops_a_topk_summary(
        self, request, fixture_name, target, conditions, transformations
    ):
        pair = request.getfixturevalue(fixture_name)
        pruned = DiffDiscoveryEngine(CharlesConfig(prune_search=True)).discover(
            pair, target, conditions, transformations
        )
        complete = DiffDiscoveryEngine(CharlesConfig(prune_search=False)).discover(
            pair, target, conditions, transformations
        )
        top_k = CharlesConfig().top_k
        pruned_top = [(s.summary.structural_key(), s.score) for s in pruned[:top_k]]
        complete_top = [(s.summary.structural_key(), s.score) for s in complete[:top_k]]
        assert pruned_top == complete_top

    def test_pruning_reduces_scored_candidates(self, fig1_pair):
        _, with_pruning = DiffDiscoveryEngine(
            CharlesConfig(prune_search=True)
        ).discover_with_stats(fig1_pair, "bonus", ["edu", "exp", "gen"], ["bonus", "salary"])
        assert with_pruning.candidates_pruned > 0
