"""Tests for the memo caches and search pruning guarantees."""

import numpy as np
import pytest

from repro.cachestore import BackendCounters
from repro.core.config import CharlesConfig
from repro.core.discovery import DiffDiscoveryEngine
from repro.relational.snapshot import SnapshotPair
from repro.relational.table import Table
from repro.search import MemoCache, PairFingerprints, SearchCaches, mask_digest
from repro.search.cache import CacheCounters


class TestMemoCache:
    def test_miss_then_hit(self):
        cache = MemoCache()
        calls = []
        assert cache.get_or_compute("k", lambda: calls.append(1) or 41) == 41
        assert cache.get_or_compute("k", lambda: calls.append(1) or 99) == 41
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_none_is_a_cacheable_value(self):
        cache = MemoCache()
        calls = []
        assert cache.get_or_compute("k", lambda: calls.append(1)) is None
        assert cache.get_or_compute("k", lambda: calls.append(1)) is None
        assert len(calls) == 1
        assert cache.hits == 1

    def test_clear_preserves_counters(self):
        cache = MemoCache()
        cache.get_or_compute("k", lambda: 1)
        cache.clear()
        assert len(cache) == 0 and cache.misses == 1
        cache.get_or_compute("k", lambda: 2)
        assert cache.misses == 2


class TestMemoCacheLRU:
    def test_capacity_evicts_least_recently_used(self):
        cache = MemoCache(capacity=2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: 1)  # refresh "a"; "b" is now LRU
        cache.get_or_compute("c", lambda: 3)  # evicts "b"
        assert len(cache) == 2 and cache.evictions == 1
        calls = []
        assert cache.get_or_compute("a", lambda: calls.append(1) or 9) == 1
        assert calls == []  # "a" survived
        cache.get_or_compute("b", lambda: calls.append(1) or 9)
        assert calls == [1]  # "b" was recomputed

    def test_unbounded_by_default(self):
        cache = MemoCache()
        for index in range(1000):
            cache.get_or_compute(index, lambda: index)
        assert len(cache) == 1000 and cache.evictions == 0
        assert cache.capacity is None

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            MemoCache(capacity=0)

    def test_capacity_one_keeps_only_the_last_entry(self):
        cache = MemoCache(capacity=1)
        assert cache.get_or_compute("a", lambda: 1) == 1
        assert cache.get_or_compute("b", lambda: 2) == 2  # evicts "a"
        assert len(cache) == 1 and cache.evictions == 1
        calls = []
        assert cache.get_or_compute("b", lambda: calls.append(1) or 9) == 2
        assert calls == []  # "b" survived as the sole entry
        cache.get_or_compute("a", lambda: calls.append(1) or 3)
        assert calls == [1] and cache.evictions == 2  # "a" recomputed, "b" evicted

    def test_re_access_resets_eviction_order(self):
        cache = MemoCache(capacity=3)
        for key in ("a", "b", "c"):
            cache.get_or_compute(key, lambda k=key: k)
        # touch in reverse: eviction order must follow recency, not insertion
        cache.get_or_compute("b", lambda: None)
        cache.get_or_compute("a", lambda: None)
        cache.get_or_compute("d", lambda: "d")  # evicts "c", the true LRU
        cache.get_or_compute("e", lambda: "e")  # then "b"
        assert cache.evictions == 2
        # the survivors hit without recomputation (hits do not evict)
        recomputed = []
        for key in ("a", "d", "e"):
            cache.get_or_compute(key, lambda k=key: recomputed.append(k) or k)
        assert recomputed == []
        # the evicted keys were really gone
        cache.get_or_compute("c", lambda: recomputed.append("c") or "c")
        assert recomputed == ["c"]

    def test_config_threads_capacity_and_counts_evictions(self, fig1_pair):
        config = CharlesConfig(search_cache_capacity=4)
        _, stats = DiffDiscoveryEngine(config).discover_with_stats(
            fig1_pair, "bonus", ["edu", "exp"], ["bonus", "salary"]
        )
        assert stats.cache_evictions > 0
        # eviction never changes results, only recomputation counts
        unbounded, _ = DiffDiscoveryEngine(CharlesConfig()).discover_with_stats(
            fig1_pair, "bonus", ["edu", "exp"], ["bonus", "salary"]
        )
        bounded, _ = DiffDiscoveryEngine(config).discover_with_stats(
            fig1_pair, "bonus", ["edu", "exp"], ["bonus", "salary"]
        )
        assert [(s.summary.structural_key(), s.score) for s in bounded] == [
            (s.summary.structural_key(), s.score) for s in unbounded
        ]

    def test_invalid_config_capacity_rejected(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            CharlesConfig(search_cache_capacity=0)


class TestPairFingerprints:
    def _pair(self, bonuses_old, bonuses_new, cities=("x", "y", "z")):
        source = Table.from_rows(
            [
                {"id": str(i), "city": cities[i], "bonus": bonuses_old[i]}
                for i in range(3)
            ],
            primary_key="id",
        )
        target = source.with_column("bonus", list(bonuses_new))
        return SnapshotPair.align(source, target, key="id")

    def test_identical_content_same_token(self):
        pair_a = self._pair([1.0, 2.0, 3.0], [1.5, 2.0, 3.0])
        pair_b = self._pair([1.0, 2.0, 3.0], [1.5, 2.0, 3.0])
        mask = np.array([True, True, False])
        token_a = PairFingerprints(pair_a, "bonus").token(("bonus",), mask)
        token_b = PairFingerprints(pair_b, "bonus").token(("bonus",), mask)
        assert token_a == token_b

    def test_changing_a_masked_row_changes_the_token(self):
        pair_a = self._pair([1.0, 2.0, 3.0], [1.5, 2.0, 3.0])
        pair_b = self._pair([1.0, 2.0, 3.0], [9.9, 2.0, 3.0])
        mask = np.array([True, True, False])
        prints_a = PairFingerprints(pair_a, "bonus")
        prints_b = PairFingerprints(pair_b, "bonus")
        assert prints_a.token(("bonus",), mask) != prints_b.token(("bonus",), mask)

    def test_changing_an_unmasked_row_keeps_the_token(self):
        # the delta-invalidation property: entries over untouched rows survive
        pair_a = self._pair([1.0, 2.0, 3.0], [1.0, 2.0, 3.5])
        pair_b = self._pair([1.0, 2.0, 3.0], [1.0, 2.0, 9.9])
        mask = np.array([True, True, False])
        prints_a = PairFingerprints(pair_a, "bonus")
        prints_b = PairFingerprints(pair_b, "bonus")
        assert prints_a.token(("bonus",), mask) == prints_b.token(("bonus",), mask)

    def test_categorical_and_missing_values_distinguished(self):
        pair_a = self._pair([1.0, 2.0, 3.0], [1.0, 2.0, 3.0], cities=("x", "y", "z"))
        pair_b = self._pair([1.0, 2.0, 3.0], [1.0, 2.0, 3.0], cities=("x", "y", "w"))
        mask = np.ones(3, dtype=bool)
        token_a = PairFingerprints(pair_a, "bonus").token(("city", "bonus"), mask)
        token_b = PairFingerprints(pair_b, "bonus").token(("city", "bonus"), mask)
        assert token_a != token_b

    def test_attribute_order_and_duplicates_normalised(self):
        pair = self._pair([1.0, 2.0, 3.0], [1.5, 2.0, 3.0])
        prints = PairFingerprints(pair, "bonus")
        mask = np.ones(3, dtype=bool)
        assert prints.token(("city", "bonus"), mask) == prints.token(
            ("city", "bonus", "city"), mask
        )


class TestMaskDigest:
    def test_distinct_masks_distinct_digests(self):
        a = np.array([True, False, True])
        b = np.array([True, True, False])
        assert mask_digest(a) != mask_digest(b)
        assert mask_digest(a) == mask_digest(a.copy())

    def test_non_contiguous_mask_supported(self):
        mask = np.zeros((4, 2), dtype=bool)[:, 0]
        assert mask_digest(mask) == mask_digest(np.zeros(4, dtype=bool))


class TestCacheCountersArithmetic:
    def _counters(self, scale):
        return CacheCounters(
            fit_hits=1 * scale,
            fit_misses=2 * scale,
            partition_hits=3 * scale,
            partition_misses=4 * scale,
            fit_evictions=5 * scale,
            partition_evictions=6 * scale,
            backends=(("memory", BackendCounters(7 * scale, 8 * scale, 9 * scale)),),
        )

    def test_add_is_fieldwise(self):
        total = self._counters(1) + self._counters(2)
        assert total == self._counters(3)
        assert total.hits == 3 + 9 and total.misses == 6 + 12
        assert total.evictions == 15 + 18

    def test_sub_inverts_add(self):
        assert self._counters(3) - self._counters(2) == self._counters(1)
        assert self._counters(1) - self._counters(1) == self._counters(0)

    def test_add_merges_distinct_backend_layers(self):
        left = CacheCounters(backends=(("l1-memory", BackendCounters(1, 2, 0)),))
        right = CacheCounters(backends=(("l2-disk", BackendCounters(3, 4, 5)),))
        merged = (left + right).by_backend
        assert merged == {
            "l1-memory": BackendCounters(1, 2, 0),
            "l2-disk": BackendCounters(3, 4, 5),
        }

    def test_hit_rate_bounds(self):
        assert CacheCounters().hit_rate == 0.0
        assert CacheCounters(fit_hits=3, fit_misses=1).hit_rate == 0.75
        assert BackendCounters().hit_rate == 0.0
        assert BackendCounters(hits=1, misses=3).hit_rate == 0.25


class TestSearchCaches:
    def test_counters_delta_arithmetic(self):
        caches = SearchCaches()
        before = caches.counters()
        caches.fits.get_or_compute("a", lambda: 1)
        caches.fits.get_or_compute("a", lambda: 1)
        caches.partitions.get_or_compute("p", lambda: [])
        delta = caches.counters() - before
        assert (delta.fit_hits, delta.fit_misses) == (1, 1)
        assert (delta.partition_hits, delta.partition_misses) == (0, 1)


class TestEngineCacheBehaviour:
    def test_search_reuses_fits_across_specs(self, fig1_pair):
        _, stats = DiffDiscoveryEngine().discover_with_stats(
            fig1_pair, "bonus", ["edu", "exp"], ["bonus", "salary"]
        )
        assert stats.fit_cache_hits > 0
        assert stats.partition_cache_misses > 0
        assert 0.0 < stats.cache_hit_rate < 1.0

    def test_stats_account_for_every_spec(self, fig1_pair):
        _, stats = DiffDiscoveryEngine().discover_with_stats(
            fig1_pair, "bonus", ["edu", "exp"], ["bonus"]
        )
        assert stats.candidates_enumerated == stats.candidates_evaluated + stats.candidates_pruned
        assert stats.wall_time_seconds > 0.0
        assert stats.rounds >= 2


class TestPruningSafety:
    @pytest.mark.parametrize("fixture_name,target,conditions,transformations", [
        ("fig1_pair", "bonus", ["edu", "exp", "gen"], ["bonus", "salary"]),
        ("employee_200", "bonus", ["edu", "exp"], ["bonus"]),
    ])
    def test_pruning_never_drops_a_topk_summary(
        self, request, fixture_name, target, conditions, transformations
    ):
        pair = request.getfixturevalue(fixture_name)
        pruned = DiffDiscoveryEngine(CharlesConfig(prune_search=True)).discover(
            pair, target, conditions, transformations
        )
        complete = DiffDiscoveryEngine(CharlesConfig(prune_search=False)).discover(
            pair, target, conditions, transformations
        )
        top_k = CharlesConfig().top_k
        pruned_top = [(s.summary.structural_key(), s.score) for s in pruned[:top_k]]
        complete_top = [(s.summary.structural_key(), s.score) for s in complete[:top_k]]
        assert pruned_top == complete_top

    def test_pruning_reduces_scored_candidates(self, fig1_pair):
        _, with_pruning = DiffDiscoveryEngine(
            CharlesConfig(prune_search=True)
        ).discover_with_stats(fig1_pair, "bonus", ["edu", "exp", "gen"], ["bonus", "salary"])
        assert with_pruning.candidates_pruned > 0
