"""Counter arithmetic and rendering: BackendCounters, CacheCounters, SearchStats."""

import pytest

from repro.cachestore import BackendCounters
from repro.search.cache import CacheCounters
from repro.search.stats import SearchStats


class TestBackendCounters:
    def test_add_sums_every_field(self):
        total = BackendCounters(hits=2, misses=3, evictions=1, round_trips=4, failovers=1) + (
            BackendCounters(hits=5, misses=1, evictions=0, round_trips=2, failovers=2)
        )
        assert total == BackendCounters(
            hits=7, misses=4, evictions=1, round_trips=6, failovers=3
        )

    def test_sub_inverts_add(self):
        base = BackendCounters(hits=10, misses=5, round_trips=8, failovers=2)
        delta = BackendCounters(hits=3, misses=1, round_trips=2, failovers=1)
        assert (base + delta) - delta == base

    def test_hit_rate_and_lookups(self):
        counters = BackendCounters(hits=3, misses=1)
        assert counters.lookups == 4
        assert counters.hit_rate == pytest.approx(0.75)
        assert BackendCounters().hit_rate == 0.0

    def test_as_dict_carries_raw_fields_and_rate(self):
        counters = BackendCounters(hits=3, misses=1, evictions=2, round_trips=5, failovers=1)
        assert counters.as_dict() == {
            "hits": 3,
            "misses": 1,
            "evictions": 2,
            "round_trips": 5,
            "failovers": 1,
            "hit_rate": 0.75,
        }


class TestCacheCounters:
    def test_add_merges_backend_layers_by_name(self):
        left = CacheCounters(
            fit_hits=1,
            backends=(
                ("memory", BackendCounters(hits=1)),
                ("remote[a:1]", BackendCounters(hits=2, round_trips=2)),
            ),
        )
        right = CacheCounters(
            fit_hits=2,
            backends=(
                ("remote[a:1]", BackendCounters(misses=1, round_trips=1, failovers=1)),
                ("remote[b:2]", BackendCounters(hits=4)),
            ),
        )
        merged = left + right
        assert merged.fit_hits == 3
        layers = merged.by_backend
        assert set(layers) == {"memory", "remote[a:1]", "remote[b:2]"}
        assert layers["remote[a:1]"] == BackendCounters(
            hits=2, misses=1, round_trips=3, failovers=1
        )

    def test_sub_inverts_add_including_backends(self):
        base = CacheCounters(
            fit_hits=4,
            partition_misses=2,
            partitions_patched=1,
            backends=(("remote[a:1]", BackendCounters(hits=5, round_trips=4)),),
        )
        delta = CacheCounters(
            fit_hits=1,
            partition_misses=1,
            partitions_patched=1,
            backends=(("remote[a:1]", BackendCounters(hits=2, round_trips=1)),),
        )
        assert (base + delta) - delta == base

    def test_derived_totals(self):
        counters = CacheCounters(
            fit_hits=2, fit_misses=1, partition_hits=1, partition_misses=2,
            fit_evictions=1, partition_evictions=2,
        )
        assert counters.hits == 3 and counters.misses == 3
        assert counters.evictions == 3
        assert counters.hit_rate == pytest.approx(0.5)


class TestSearchStats:
    def test_merge_cache_counters_accumulates_layers(self):
        stats = SearchStats()
        stats.merge_cache_counters(
            CacheCounters(
                fit_hits=1,
                partition_misses=1,
                partitions_recomputed=1,
                backends=(("remote[a:1]", BackendCounters(hits=1, round_trips=1)),),
            )
        )
        stats.merge_cache_counters(
            CacheCounters(
                fit_hits=2,
                backends=(
                    ("memory", BackendCounters(hits=3)),
                    ("remote[a:1]", BackendCounters(misses=2, round_trips=2, failovers=1)),
                ),
            )
        )
        assert stats.fit_cache_hits == 3
        assert stats.partitions_recomputed == 1
        assert stats.backend_counters["remote[a:1]"] == BackendCounters(
            hits=1, misses=2, round_trips=3, failovers=1
        )
        assert stats.backend_counters["memory"].hits == 3

    def test_as_dict_nests_backend_layers_as_plain_dicts(self):
        stats = SearchStats()
        stats.merge_cache_counters(
            CacheCounters(backends=(("remote[a:1]", BackendCounters(hits=1, failovers=2)),))
        )
        payload = stats.as_dict()
        assert payload["backend_counters"] == {
            "remote[a:1]": {
                "hits": 1,
                "misses": 0,
                "evictions": 0,
                "round_trips": 0,
                "failovers": 2,
                "hit_rate": 1.0,
            }
        }

    def test_describe_golden_rendering(self):
        stats = SearchStats(
            candidates_enumerated=40,
            candidates_evaluated=25,
            candidates_pruned_duplicates=6,
            candidates_pruned_bounds=4,
            candidates_pruned_spec_bounds=5,
            fit_cache_hits=30,
            fit_cache_misses=10,
            cost_routing=True,
            cache_backend="remote",
            wall_time_seconds=1.234,
            n_jobs=4,
            warm_start_floor=0.875,
            partitions_patched=7,
            partitions_recomputed=2,
            partition_patch_fallbacks=1,
        )
        assert stats.describe() == (
            "40 candidates planned (25 evaluated, 15 pruned), "
            "cache hit rate 75.0%, 1.23s, jobs=4, "
            "5 bound-pruned before discovery, cost-routed, cache=remote, "
            "warm floor 0.875, "
            "partitions patched 7/recomputed 2 (1 patch fallbacks)"
        )

    def test_describe_is_str(self):
        stats = SearchStats(candidates_enumerated=1)
        assert str(stats) == stats.describe()
