"""Single-flight dedup: one evaluation per in-flight key, failures propagate."""

from __future__ import annotations

import asyncio

import pytest

from repro.serving.batcher import RequestBatcher, work_key


def run(coro):
    return asyncio.run(coro)


class TestWorkKey:
    def test_total_over_every_input(self):
        base = dict(
            fingerprint=b"f" * 16,
            source_digest=b"s" * 16,
            target_digest=b"t" * 16,
            target="bonus",
            condition_attributes=("dept",),
            transformation_attributes=None,
        )
        reference = work_key(**base)
        assert work_key(**base) == reference  # deterministic
        for field, changed in [
            ("fingerprint", b"F" * 16),
            ("source_digest", b"S" * 16),
            ("target_digest", b"T" * 16),
            ("target", "salary"),
            ("condition_attributes", ("dept", "title")),
            ("transformation_attributes", ("exp",)),
        ]:
            assert work_key(**{**base, field: changed}) != reference, field

    def test_none_and_empty_shortlists_differ(self):
        base = dict(
            fingerprint=b"f" * 16,
            source_digest=b"s" * 16,
            target_digest=b"t" * 16,
            target="bonus",
            transformation_attributes=None,
        )
        # None means "resolve via the setup assistant", () means "none at all"
        assert work_key(**base, condition_attributes=None) != work_key(
            **base, condition_attributes=()
        )


class TestSingleFlight:
    def test_concurrent_same_key_evaluates_once(self):
        async def scenario():
            batcher = RequestBatcher()
            evaluations = 0
            gate = asyncio.Event()

            async def produce():
                nonlocal evaluations
                evaluations += 1
                await gate.wait()
                return "answer"

            tasks = [
                asyncio.create_task(batcher.run(b"key", produce)) for _ in range(5)
            ]
            await asyncio.sleep(0.05)
            assert batcher.inflight == 1
            gate.set()
            results = await asyncio.gather(*tasks)
            assert evaluations == 1
            assert [value for value, _ in results] == ["answer"] * 5
            assert sorted(deduped for _, deduped in results) == [False] + [True] * 4
            assert batcher.leaders == 1
            assert batcher.followers == 4
            assert batcher.inflight == 0

        run(scenario())

    def test_different_keys_run_independently(self):
        async def scenario():
            batcher = RequestBatcher()

            async def produce_a():
                return "a"

            async def produce_b():
                return "b"

            (va, da), (vb, db) = await asyncio.gather(
                batcher.run(b"ka", produce_a), batcher.run(b"kb", produce_b)
            )
            assert (va, vb) == ("a", "b")
            assert (da, db) == (False, False)
            assert batcher.leaders == 2
            assert batcher.followers == 0

        run(scenario())

    def test_sequential_same_key_is_not_deduped(self):
        async def scenario():
            batcher = RequestBatcher()
            calls = 0

            async def produce():
                nonlocal calls
                calls += 1
                return calls

            first, _ = await batcher.run(b"key", produce)
            second, deduped = await batcher.run(b"key", produce)
            # the flight is over; a new request must re-evaluate (results may
            # legitimately be served by the memo caches, but never by a stale
            # in-flight future)
            assert (first, second, deduped) == (1, 2, False)

        run(scenario())


class TestFailurePropagation:
    def test_leader_error_reaches_followers_and_clears_flight(self):
        async def scenario():
            batcher = RequestBatcher()
            gate = asyncio.Event()

            async def explode():
                await gate.wait()
                raise ValueError("search failed")

            leader = asyncio.create_task(batcher.run(b"key", explode))
            follower = asyncio.create_task(batcher.run(b"key", explode))
            await asyncio.sleep(0.05)
            gate.set()
            with pytest.raises(ValueError):
                await leader
            with pytest.raises(ValueError):
                await follower
            assert batcher.inflight == 0

            async def recover():
                return "recovered"

            value, deduped = await batcher.run(b"key", recover)
            assert (value, deduped) == ("recovered", False)

        run(scenario())

    def test_cancelled_follower_does_not_kill_the_flight(self):
        async def scenario():
            batcher = RequestBatcher()
            gate = asyncio.Event()

            async def produce():
                await gate.wait()
                return "answer"

            leader = asyncio.create_task(batcher.run(b"key", produce))
            follower = asyncio.create_task(batcher.run(b"key", produce))
            await asyncio.sleep(0.05)
            follower.cancel()
            with pytest.raises(asyncio.CancelledError):
                await follower
            gate.set()
            value, deduped = await leader
            assert (value, deduped) == ("answer", False)

        run(scenario())

    def test_cancelled_leader_wakes_followers_with_retryable_error(self):
        from repro.exceptions import ServingError

        async def scenario():
            batcher = RequestBatcher()
            gate = asyncio.Event()

            async def produce():
                await gate.wait()
                return "answer"

            leader = asyncio.create_task(batcher.run(b"key", produce))
            follower = asyncio.create_task(batcher.run(b"key", produce))
            await asyncio.sleep(0.05)
            leader.cancel()
            with pytest.raises(asyncio.CancelledError):
                await leader
            with pytest.raises(ServingError, match="retry"):
                await follower

        run(scenario())
