"""Session registry: tenancy enforcement, capacity shedding, idle sweeping."""

from __future__ import annotations

import asyncio

import pytest

from repro.core import CharlesConfig
from repro.serving.admission import LoadShedError
from repro.serving.registry import (
    SessionRegistry,
    TenantAccessError,
    UnknownSessionError,
)

_FAST = dict(max_partitions=2, max_condition_attributes=2, top_k=5)


class TestTenancy:
    def test_create_and_get_roundtrip(self):
        registry = SessionRegistry(max_sessions=4)
        lease = registry.create("acme", CharlesConfig(**_FAST), key="name")
        assert registry.get(lease.session_id, "acme") is lease
        assert lease.store.key == "name"
        assert len(lease.session_id) == 32  # 16 random bytes, hex
        info = lease.info()
        assert info["tenant"] == "acme"
        assert info["fingerprint"] == lease.config.cache_fingerprint().hex()

    def test_foreign_tenant_is_refused(self):
        registry = SessionRegistry(max_sessions=4)
        lease = registry.create("acme", CharlesConfig(**_FAST))
        with pytest.raises(TenantAccessError):
            registry.get(lease.session_id, "rival")
        with pytest.raises(TenantAccessError):
            registry.close(lease.session_id, "rival")
        # the refusal must not have closed anything
        assert registry.get(lease.session_id, "acme") is lease

    def test_unknown_session_is_distinct_from_foreign(self):
        registry = SessionRegistry(max_sessions=4)
        with pytest.raises(UnknownSessionError):
            registry.get("deadbeef" * 4, "acme")

    def test_close_removes_and_releases(self):
        registry = SessionRegistry(max_sessions=4)
        lease = registry.create("acme", CharlesConfig(**_FAST))
        registry.close(lease.session_id, "acme")
        assert lease.engine.closed
        with pytest.raises(UnknownSessionError):
            registry.get(lease.session_id, "acme")

    def test_tenants_counts_per_tenant(self):
        registry = SessionRegistry(max_sessions=8)
        registry.create("a", CharlesConfig(**_FAST))
        registry.create("a", CharlesConfig(**_FAST))
        registry.create("b", CharlesConfig(**_FAST))
        assert registry.tenants() == {"a": 2, "b": 1}


class TestCapacity:
    def test_capacity_sheds_with_reason(self):
        registry = SessionRegistry(max_sessions=1)
        registry.create("a", CharlesConfig(**_FAST))
        with pytest.raises(LoadShedError) as excinfo:
            registry.create("b", CharlesConfig(**_FAST))
        assert excinfo.value.reason == "session_capacity"
        assert excinfo.value.retry_after_seconds >= 1

    def test_close_frees_capacity(self):
        registry = SessionRegistry(max_sessions=1)
        lease = registry.create("a", CharlesConfig(**_FAST))
        registry.close(lease.session_id, "a")
        registry.create("b", CharlesConfig(**_FAST))  # must not raise


class TestSweeping:
    def test_sweep_closes_idle_leases(self):
        registry = SessionRegistry(max_sessions=4)
        lease = registry.create("a", CharlesConfig(**_FAST))
        assert registry.sweep_expired(ttl_seconds=3600) == []  # still fresh
        victims = registry.sweep_expired(ttl_seconds=0.0)
        assert victims == [lease]
        assert lease.engine.closed
        assert registry.expired_total == 1
        assert len(registry) == 0

    def test_sweep_skips_leases_mid_query(self):
        async def scenario():
            registry = SessionRegistry(max_sessions=4)
            lease = registry.create("a", CharlesConfig(**_FAST))
            async with lease.lock:  # a query holds the lock for its duration
                assert registry.sweep_expired(ttl_seconds=0.0) == []
            assert registry.sweep_expired(ttl_seconds=0.0) == [lease]

        asyncio.run(scenario())

    def test_close_all_tears_everything_down(self):
        registry = SessionRegistry(max_sessions=4)
        leases = [registry.create("a", CharlesConfig(**_FAST)) for _ in range(3)]
        registry.close_all()
        assert len(registry) == 0
        assert all(lease.engine.closed for lease in leases)


class TestMonotonicLeaseAge:
    def test_age_ignores_wall_clock_steps(self, monkeypatch):
        # lease age and the engine's idle clock must share the monotonic
        # clock: an NTP step / DST jump / VM resume shifting time.time() may
        # not age a lease (or rejuvenate one) — only real elapsed time does
        import time as time_module

        registry = SessionRegistry(max_sessions=4)
        lease = registry.create("a", CharlesConfig(**_FAST))
        assert lease.age_seconds < 5.0
        monkeypatch.setattr(
            time_module, "time", lambda: lease.created_at + 86400.0
        )
        assert lease.age_seconds < 5.0  # a day of wall-clock step: no aging
        assert registry.sweep_expired(ttl_seconds=3600) == []

    def test_info_reports_both_stamps(self):
        registry = SessionRegistry(max_sessions=4)
        lease = registry.create("a", CharlesConfig(**_FAST))
        info = lease.info()
        assert info["age_seconds"] >= 0.0
        assert info["created_at"] == lease.created_at  # wall-clock, for humans
        # the two age figures come off the same clock
        assert abs(info["age_seconds"] - info["idle_seconds"]) < 5.0
