"""Admission control: quotas bound execution, overflow sheds immediately."""

from __future__ import annotations

import asyncio

import pytest

from repro.serving.admission import AdmissionController, LoadShedError


def run(coro):
    return asyncio.run(coro)


class TestQuota:
    def test_concurrency_is_bounded_per_tenant(self):
        async def scenario():
            controller = AdmissionController(queue_depth=10, tenant_concurrency=2)
            running = 0
            peak = 0
            release = asyncio.Event()

            async def job():
                nonlocal running, peak
                async with controller.admit("t"):
                    running += 1
                    peak = max(peak, running)
                    await release.wait()
                    running -= 1

            tasks = [asyncio.create_task(job()) for _ in range(6)]
            await asyncio.sleep(0.05)
            assert peak == 2
            release.set()
            await asyncio.gather(*tasks)
            return peak

        assert run(scenario()) == 2

    def test_tenants_do_not_share_slots(self):
        async def scenario():
            controller = AdmissionController(queue_depth=1, tenant_concurrency=1)
            entered = []
            release = asyncio.Event()

            async def job(tenant):
                async with controller.admit(tenant):
                    entered.append(tenant)
                    await release.wait()

            tasks = [asyncio.create_task(job(t)) for t in ("a", "b", "c")]
            await asyncio.sleep(0.05)
            # one flooding tenant cannot block the others' first request
            assert sorted(entered) == ["a", "b", "c"]
            release.set()
            await asyncio.gather(*tasks)

        run(scenario())


class TestShedding:
    def test_overflow_sheds_without_waiting(self):
        async def scenario():
            controller = AdmissionController(queue_depth=1, tenant_concurrency=1)
            release = asyncio.Event()

            async def hold():
                async with controller.admit("t"):
                    await release.wait()

            running = asyncio.create_task(hold())
            waiting = asyncio.create_task(hold())
            await asyncio.sleep(0.05)  # one running, one waiting: queue full
            with pytest.raises(LoadShedError) as excinfo:
                async with controller.admit("t"):
                    pass
            assert excinfo.value.retry_after_seconds >= 1
            assert excinfo.value.reason == "queue_full"
            assert controller.snapshot()["t"]["shed"] == 1
            release.set()
            await asyncio.gather(running, waiting)

        run(scenario())

    def test_slot_released_after_exit_and_after_error(self):
        async def scenario():
            controller = AdmissionController(queue_depth=1, tenant_concurrency=1)
            async with controller.admit("t"):
                pass
            with pytest.raises(RuntimeError):
                async with controller.admit("t"):
                    raise RuntimeError("body failed")
            # both slots came back: a fresh admit succeeds instantly
            async with controller.admit("t"):
                pass
            state = controller.snapshot()["t"]
            assert state["running"] == 0
            assert state["waiting"] == 0
            assert state["admitted"] == 3

        run(scenario())

    def test_retry_after_tracks_observed_service_time(self):
        async def scenario():
            controller = AdmissionController(queue_depth=4, tenant_concurrency=1)
            assert controller.retry_after_seconds("t") == 1  # nothing observed yet
            async with controller.admit("t"):
                await asyncio.sleep(0.01)
            state = controller.snapshot()["t"]
            assert state["service_seconds_ema"] > 0
            assert controller.retry_after_seconds("t") >= 1

        run(scenario())


class TestValidation:
    def test_bad_bounds_are_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(queue_depth=0, tenant_concurrency=1)
        with pytest.raises(ValueError):
            AdmissionController(queue_depth=1, tenant_concurrency=0)
