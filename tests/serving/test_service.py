"""End-to-end serving tests over a real socket: the differential invariant,
cross-tenant single-flight dedup, graceful backpressure, and the HTTP error
contract."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core import CharlesConfig, ServingConfig
from repro.obs.metrics import get_registry
from repro.relational.csv_io import write_csv_text
from repro.serving import ServingServer
from repro.timeline import EngineSession
from repro.workloads import streaming_employee_timeline

_FAST = dict(max_partitions=2, max_condition_attributes=2, top_k=5)


@pytest.fixture(autouse=True)
def fresh_metrics():
    """The metrics registry is process-wide; isolate each test's counters."""
    get_registry().reset()
    yield
    get_registry().reset()


def _ranking(result):
    return [(s.summary.describe(), s.score) for s in result.summaries]


def request(url, method="GET", payload=None, tenant=None):
    """One JSON request; returns (status, headers, decoded body) without raising."""
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    if tenant is not None:
        req.add_header("X-Charles-Tenant", tenant)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read() or b"{}")
    except urllib.error.HTTPError as error:
        body = error.read()
        return error.code, dict(error.headers), json.loads(body or b"{}")


def request_text(url):
    with urllib.request.urlopen(url, timeout=60) as resp:
        return resp.status, resp.read().decode("utf-8")


@pytest.fixture(scope="module")
def chain():
    """A 3-version streaming chain and its versions' exact CSV uploads."""
    store, _ = streaming_employee_timeline(60, num_versions=3, seed=13)
    csvs = {name: write_csv_text(store.version(name).table) for name in store.names}
    return store, csvs


@pytest.fixture()
def server():
    with ServingServer() as running:
        yield running


def _open_session(url, tenant, config_fields, key="name"):
    status, _, body = request(
        f"{url}/v1/sessions",
        "POST",
        {"key": key, "config": config_fields},
        tenant=tenant,
    )
    assert status == 201, body
    return body


def _advance(url, session_id, tenant, name, csv_text):
    status, _, body = request(
        f"{url}/v1/sessions/{session_id}/advance",
        "POST",
        {"version": name, "csv": csv_text},
        tenant=tenant,
    )
    assert status == 200, body
    return body


def _summarize(url, session_id, tenant, **fields):
    return request(
        f"{url}/v1/sessions/{session_id}/summarize",
        "POST",
        {"target": "bonus", **fields},
        tenant=tenant,
    )


def _served_ranking(body):
    return [(entry["summary"], entry["score"]) for entry in body["rankings"]]


class TestDifferentialInvariant:
    def test_interleaved_tenants_match_solo_direct_runs(self, server, chain):
        """Two tenants with *different* result-affecting configs, served
        interleaved over the same chain, each get byte-identical results to a
        solo EngineSession run of their config — serving adds no cross-talk."""
        store, csvs = chain
        url = server.url
        configs = {
            "acme": dict(_FAST),
            "rival": dict(_FAST, alpha=0.7),  # result-affecting difference
        }
        sessions = {
            tenant: _open_session(url, tenant, fields)
            for tenant, fields in configs.items()
        }
        fingerprints = {t: s["fingerprint"] for t, s in sessions.items()}
        assert fingerprints["acme"] != fingerprints["rival"]

        served = {tenant: [] for tenant in configs}
        names = store.names
        # interleave per version and per hop: A then B, always alternating
        for index, name in enumerate(names):
            for tenant in configs:
                _advance(url, sessions[tenant]["session"], tenant, name, csvs[name])
            if index >= 1:
                for tenant in configs:
                    status, _, body = _summarize(
                        url, sessions[tenant]["session"], tenant
                    )
                    assert status == 200, body
                    assert body["source"] == names[index - 1]
                    assert body["version"] == name
                    served[tenant].append(_served_ranking(body))

        for tenant, fields in configs.items():
            engine = EngineSession(CharlesConfig(**fields))
            solo = [
                _ranking(engine.summarize_pair(store.pair(src, dst), "bonus"))
                for src, dst in zip(names, names[1:])
            ]
            engine.close()
            assert served[tenant] == solo, tenant

        # a different config produced genuinely different work
        assert served["acme"] != served["rival"]


class TestDedup:
    def test_identical_inflight_work_across_tenants_evaluates_once(
        self, server, chain, monkeypatch
    ):
        store, csvs = chain
        url = server.url
        calls = []
        original = EngineSession.summarize_pair

        def slow_summarize(self, pair, target, **kwargs):
            calls.append(threading.get_ident())
            time.sleep(0.5)  # widen the in-flight window so requests overlap
            return original(self, pair, target, **kwargs)

        monkeypatch.setattr(EngineSession, "summarize_pair", slow_summarize)

        sessions = {}
        for tenant in ("acme", "rival"):
            sessions[tenant] = _open_session(url, tenant, dict(_FAST))["session"]
            for name in store.names[:2]:
                _advance(url, sessions[tenant], tenant, name, csvs[name])

        results = {}

        def fire(tenant):
            results[tenant] = _summarize(url, sessions[tenant], tenant)

        threads = [
            threading.Thread(target=fire, args=(tenant,)) for tenant in sessions
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        bodies = [results[t][2] for t in sessions]
        assert [results[t][0] for t in sessions] == [200, 200]
        # one evaluation served both tenants, and said so
        assert len(calls) == 1
        assert sorted(body["deduped"] for body in bodies) == [False, True]
        assert _served_ranking(bodies[0]) == _served_ranking(bodies[1])

        _, metrics = request_text(f"{url}/metrics")
        assert 'serve_dedup_total{outcome="follower"} 1' in metrics

    def test_different_configs_never_share_a_flight(self, server, chain, monkeypatch):
        store, csvs = chain
        url = server.url
        calls = []
        original = EngineSession.summarize_pair

        def slow_summarize(self, pair, target, **kwargs):
            calls.append(threading.get_ident())
            time.sleep(0.3)
            return original(self, pair, target, **kwargs)

        monkeypatch.setattr(EngineSession, "summarize_pair", slow_summarize)

        sessions = {}
        for tenant, fields in (("acme", dict(_FAST)), ("rival", dict(_FAST, alpha=0.7))):
            sessions[tenant] = _open_session(url, tenant, fields)["session"]
            for name in store.names[:2]:
                _advance(url, sessions[tenant], tenant, name, csvs[name])

        results = {}

        def fire(tenant):
            results[tenant] = _summarize(url, sessions[tenant], tenant)

        threads = [
            threading.Thread(target=fire, args=(tenant,)) for tenant in sessions
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert [results[t][0] for t in sessions] == [200, 200]
        assert len(calls) == 2  # distinct fingerprints: no sharing
        assert all(not results[t][2]["deduped"] for t in sessions)


class TestBackpressure:
    def test_flood_sheds_gracefully_and_recovers(self, chain, monkeypatch):
        """Flooding a capacity-1 queue yields fast 503s with an integer
        Retry-After — never a hung connection — and service resumes after."""
        store, csvs = chain
        original = EngineSession.summarize_pair

        def slow_summarize(self, pair, target, **kwargs):
            time.sleep(0.5)
            return original(self, pair, target, **kwargs)

        monkeypatch.setattr(EngineSession, "summarize_pair", slow_summarize)

        serving = ServingConfig(queue_depth=1, tenant_concurrency=1, worker_threads=2)
        with ServingServer(serving=serving) as server:
            url = server.url
            session = _open_session(url, "acme", dict(_FAST))["session"]
            for name in store.names[:2]:
                _advance(url, session, "acme", name, csvs[name])

            outcomes = []

            def fire():
                started = time.perf_counter()
                status, headers, body = _summarize(url, session, "acme")
                outcomes.append((status, headers, time.perf_counter() - started))

            threads = [threading.Thread(target=fire) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not any(thread.is_alive() for thread in threads)  # nothing hung

            statuses = sorted(status for status, _, _ in outcomes)
            assert statuses.count(503) >= 1
            assert statuses.count(200) >= 1
            assert statuses.count(200) + statuses.count(503) == 6
            for status, headers, elapsed in outcomes:
                if status == 503:
                    retry_after = headers.get("Retry-After")
                    assert retry_after is not None
                    assert int(retry_after) >= 1
                    assert elapsed < 5  # shed at the door, not after a timeout

            # the tenant is not poisoned: a later request succeeds
            status, _, body = _summarize(url, session, "acme")
            assert status == 200, body

            _, metrics = request_text(f"{url}/metrics")
            assert 'serve_shed_total{reason="queue_full"}' in metrics


class TestHttpContract:
    def test_health_and_metrics(self, server):
        status, _, health = request(f"{server.url}/healthz")
        assert (status, health["status"]) == (200, "ok")
        status, metrics = request_text(f"{server.url}/metrics")
        assert status == 200
        assert "serve_request_seconds_bucket" in metrics
        assert 'serve_dedup_total{outcome="leader"} 0' in metrics  # pre-seeded

    def test_missing_tenant_is_400(self, server):
        status, _, body = request(f"{server.url}/v1/sessions", "POST", {})
        assert status == 400
        assert "tenant" in body["error"]

    def test_unknown_config_field_is_400(self, server):
        status, _, body = request(
            f"{server.url}/v1/sessions",
            "POST",
            {"config": {"no_such_knob": 1}},
            tenant="acme",
        )
        assert status == 400
        assert "no_such_knob" in body["error"]

    def test_infra_fields_are_server_owned(self, server):
        status, _, body = request(
            f"{server.url}/v1/sessions",
            "POST",
            {"config": {"cache_url": "evil:1"}},
            tenant="acme",
        )
        assert status == 400
        assert "server-owned" in body["error"]

    def test_foreign_tenant_is_403(self, server, chain):
        session = _open_session(server.url, "acme", dict(_FAST))["session"]
        status, _, _ = request(
            f"{server.url}/v1/sessions/{session}", tenant="rival"
        )
        assert status == 403

    def test_unknown_session_is_404(self, server):
        status, _, _ = request(
            f"{server.url}/v1/sessions/{'00' * 16}", tenant="acme"
        )
        assert status == 404
        status, _, _ = request(f"{server.url}/nowhere")
        assert status == 404

    def test_summarize_before_two_versions_is_409(self, server, chain):
        store, csvs = chain
        session = _open_session(server.url, "acme", dict(_FAST))["session"]
        status, _, body = _summarize(server.url, session, "acme")
        assert status == 409
        name = store.names[0]
        _advance(server.url, session, "acme", name, csvs[name])
        status, _, _ = _summarize(server.url, session, "acme")
        assert status == 409

    def test_method_not_allowed_is_405(self, server):
        status, _, _ = request(f"{server.url}/healthz", "POST", {})
        assert status == 405

    def test_malformed_json_is_400(self, server):
        req = urllib.request.Request(
            f"{server.url}/v1/sessions",
            data=b"{not json",
            method="POST",
            headers={"X-Charles-Tenant": "acme"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=10)
        assert excinfo.value.code == 400

    def test_close_then_use_is_404(self, server, chain):
        session = _open_session(server.url, "acme", dict(_FAST))["session"]
        status, _, body = request(
            f"{server.url}/v1/sessions/{session}", "DELETE", tenant="acme"
        )
        assert (status, body["closed"]) == (200, True)
        status, _, _ = request(f"{server.url}/v1/sessions/{session}", tenant="acme")
        assert status == 404

    def test_list_shows_only_own_sessions(self, server):
        mine = _open_session(server.url, "acme", dict(_FAST))["session"]
        _open_session(server.url, "rival", dict(_FAST))
        status, _, body = request(f"{server.url}/v1/sessions", tenant="acme")
        assert status == 200
        listed = {entry["session"] for entry in body["sessions"]}
        assert mine in listed
        assert all(entry["tenant"] == "acme" for entry in body["sessions"])
