"""Additional end-to-end scenarios: second targets, no-change reports, SQL round trips."""

import numpy as np
import pytest

from repro.core import Charles, score_summary, summary_to_sql_update
from repro.relational import SnapshotPair
from repro.viz import result_to_markdown
from repro.workloads import (
    evolve_pair,
    generate_montgomery_payroll,
    montgomery_pair,
    overtime_policy,
)


class TestOvertimeTarget:
    """The Montgomery workload has a second policy-driven attribute (overtime_pay)."""

    @pytest.fixture(scope="class")
    def overtime_pair(self):
        source = generate_montgomery_payroll(600, seed=19)
        return evolve_pair(source, overtime_policy(), seed=20)

    def test_policy_is_exactly_consistent(self, overtime_pair):
        assert score_summary(overtime_policy().summary, overtime_pair).accuracy > 0.99

    def test_charles_recovers_the_public_safety_split(self, overtime_pair):
        result = Charles().summarize_pair(overtime_pair, "overtime_pay")
        assert result.best.breakdown.accuracy > 0.9
        rendered = result.best.summary.describe()
        assert "POL" in rendered or "FRS" in rendered

    def test_both_targets_summarised_independently(self):
        pair = montgomery_pair(500, seed=23)
        results = Charles().summarize_all(pair)
        assert "base_salary" in results
        # overtime was not touched by the COLA policy, so it is not a target here
        assert "overtime_pay" not in results


class TestNoChangeReporting:
    def test_markdown_report_for_no_change_result(self, fig1_tables):
        source, _ = fig1_tables
        pair = SnapshotPair.align(source, source)
        result = Charles().summarize_pair(pair, "bonus")
        report = result_to_markdown(result)
        assert "Ranked summaries" in report
        assert "(no change)" in report

    def test_sql_for_no_change_summary_is_a_comment(self, fig1_tables):
        source, _ = fig1_tables
        pair = SnapshotPair.align(source, source)
        result = Charles().summarize_pair(pair, "bonus")
        assert summary_to_sql_update(result.best.summary, "employees").startswith("--")


class TestSqlSemantics:
    def test_sql_case_arms_follow_summary_order(self, fig1_result):
        sql = summary_to_sql_update(fig1_result.best.summary, "employees")
        positions = [sql.index(str(ct.condition.descriptors[0].attribute))
                     for ct in fig1_result.best.summary]
        assert positions == sorted(positions)

    def test_sql_mentions_every_transformation_constant(self, fig1_result):
        sql = summary_to_sql_update(fig1_result.best.summary, "employees")
        for ct in fig1_result.best.summary:
            for coefficient in ct.transformation.coefficients:
                if abs(coefficient - 1.0) > 1e-9:
                    assert f"{coefficient:g}" in sql


class TestMixedChangeAttributes:
    def test_categorical_and_numeric_changes_coexist(self, fig1_tables):
        source, target = fig1_tables
        # additionally change a categorical attribute; ChARLES must still align
        # and explain the numeric target without tripping over the other change
        modified = target.with_column(
            "gen", ["NB"] + target.column("gen")[1:]
        )
        pair = SnapshotPair.align(source, modified, key="name")
        assert "gen" in pair.changed_attributes()
        result = Charles().summarize_pair(pair, "bonus",
                                          condition_attributes=["edu", "exp"],
                                          transformation_attributes=["bonus"])
        assert result.best.breakdown.accuracy > 0.9

    def test_summaries_never_predict_nan_with_identity_fallback(self, fig1_result, fig1_pair):
        for scored in fig1_result.summaries:
            predictions = scored.summary.apply(fig1_pair.source)
            assert not np.isnan(predictions).any()
