"""End-to-end integration tests: the full demo workflow on every workload."""

import numpy as np
import pytest

from repro.core import Charles, CharlesConfig
from repro.diff import diff_snapshots
from repro.evaluation import evaluate_summary, rule_recovery, run_method_comparison, standard_methods
from repro.relational import SnapshotPair, read_csv, write_csv
from repro.viz import render_partition_treemap, render_summary_tree, result_to_markdown
from repro.workloads import (
    billionaires_pair,
    bonus_policy,
    cola_policy,
    employee_pair,
    example_policy,
    example_snapshots,
    wealth_policy,
)


class TestPaperExampleEndToEnd:
    """The demo walk-through (Fig. 4) as a single scripted scenario."""

    def test_full_demo_workflow(self, tmp_path):
        # step 1: "upload" datasets (round-trip through CSV like the demo does)
        source, target = example_snapshots()
        write_csv(source, tmp_path / "2016.csv")
        write_csv(target, tmp_path / "2017.csv")
        source = read_csv(tmp_path / "2016.csv", primary_key="name")
        target = read_csv(tmp_path / "2017.csv", primary_key="name")

        charles = Charles()
        # steps 2-5: target attribute + attribute shortlists
        suggestions = charles.suggest_attributes(source, target, "bonus")
        assert "bonus" in suggestions.selected_transformation_attributes
        # steps 6-8: summaries with the demo's attribute selections
        result = charles.summarize(
            source, target, "bonus", key="name",
            condition_attributes=["edu", "exp", "gen"],
            transformation_attributes=["bonus", "salary"],
        )
        # the top summary reflects Example 1 and scores in the high 80s / low 90s
        recovery = rule_recovery(result.best.summary, example_policy().summary, result.pair.source)
        assert recovery.recall == 1.0
        assert 0.85 <= result.best.score <= 0.95
        # steps 9-10: visualisation artefacts render without error and mention
        # the 33.3% top partition of the demo
        treemap = render_partition_treemap(result.best.summary, result.pair)
        assert "33.3%" in treemap
        tree = render_summary_tree(result.best.summary)
        assert "YES" in tree
        report = result_to_markdown(result)
        (tmp_path / "report.md").write_text(report)
        assert "Ranked summaries" in report

    def test_syntactic_diff_is_much_larger_than_summary(self, fig1_pair, fig1_result):
        report = diff_snapshots(fig1_pair, attributes=["bonus"])
        assert report.num_changes == 7
        assert fig1_result.best.summary.size == 3
        assert fig1_result.best.summary.size < report.num_changes


class TestWorkloadRecoveryEndToEnd:
    def test_employee_workload_recovery_with_noise(self):
        pair = employee_pair(400, seed=13, noise_fraction=0.05, noise_scale=0.02)
        result = Charles().summarize_pair(
            pair, "bonus",
            condition_attributes=["edu", "exp", "gen"],
            transformation_attributes=["bonus"],
        )
        recovery = rule_recovery(result.best.summary, bonus_policy().summary, pair.source)
        assert recovery.recall >= 2 / 3
        assert result.best.breakdown.accuracy > 0.8

    def test_billionaires_workload_recovery(self):
        pair = billionaires_pair(800, seed=21)
        result = Charles().summarize_pair(pair, "net_worth")
        recovery = rule_recovery(result.best.summary, wealth_policy().summary, pair.source)
        assert recovery.recall >= 2 / 3

    def test_montgomery_workload_produces_usable_summary(self, montgomery_400):
        result = Charles().summarize_pair(montgomery_400, "base_salary")
        metrics = evaluate_summary(result.best.summary, montgomery_400, cola_policy())
        assert metrics["accuracy"] > 0.4
        assert metrics["num_rules"] <= 6

    def test_method_comparison_ranks_charles_first_on_score(self, employee_200):
        methods = standard_methods("bonus", ["edu", "exp"], ["bonus"])
        table = run_method_comparison(employee_200, bonus_policy(), methods, workload="employee")
        scores = {row["method"]: row["score"] for row in table.rows}
        assert scores["charles"] == max(scores.values())

    def test_charles_beats_baselines_on_rule_recovery(self, employee_200):
        methods = standard_methods("bonus", ["edu", "exp"], ["bonus"])
        table = run_method_comparison(employee_200, bonus_policy(), methods, workload="employee")
        recalls = {row["method"]: row["rule_recall"] for row in table.rows}
        assert recalls["charles"] >= max(v for k, v in recalls.items() if k != "charles")


class TestRobustnessEndToEnd:
    def test_alpha_extremes_and_default_all_produce_valid_results(self, fig1_pair):
        for alpha in (0.0, 0.25, 0.5, 0.75, 1.0):
            result = Charles(CharlesConfig(alpha=alpha)).summarize_pair(
                fig1_pair, "bonus",
                condition_attributes=["edu", "exp"], transformation_attributes=["bonus"],
            )
            assert result.summaries
            assert 0.0 <= result.best.score <= 1.0

    def test_identical_snapshots_report_no_change(self, fig1_tables):
        source, _ = fig1_tables
        pair = SnapshotPair.align(source, source)
        result = Charles().summarize_pair(pair, "bonus")
        assert result.best.summary.size == 0
        assert result.best.breakdown.accuracy == 1.0

    def test_every_numeric_attribute_can_be_a_target(self, fig1_pair):
        for target in ("bonus", "salary", "exp"):
            result = Charles().summarize_pair(fig1_pair, target)
            assert result.summaries, f"no summaries for target {target}"

    def test_single_row_change(self, fig1_tables):
        source, _ = fig1_tables
        bonus = source.column("bonus")
        bonus[0] = bonus[0] + 5000.0
        target = source.with_column("bonus", bonus)
        pair = SnapshotPair.align(source, target)
        result = Charles().summarize_pair(pair, "bonus")
        assert result.best.breakdown.accuracy >= 0.0  # must not crash, any score valid

    def test_reproducibility_across_runs(self, employee_200):
        first = Charles().summarize_pair(
            employee_200, "bonus",
            condition_attributes=["edu", "exp"], transformation_attributes=["bonus"],
        )
        second = Charles().summarize_pair(
            employee_200, "bonus",
            condition_attributes=["edu", "exp"], transformation_attributes=["bonus"],
        )
        assert first.best.summary.describe() == second.best.summary.describe()
        assert first.best.score == pytest.approx(second.best.score)
