"""Unit tests for association measures."""

import numpy as np
import pytest

from repro.ml.correlation import (
    association,
    association_with_target,
    correlation_ratio,
    cramers_v,
    pearson,
    spearman,
)
from repro.relational.table import Table


class TestPearsonSpearman:
    def test_perfect_positive_and_negative(self):
        x = np.arange(10.0)
        assert pearson(x, 2 * x + 1) == pytest.approx(1.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_independent_is_near_zero(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=2000), rng.normal(size=2000)
        assert abs(pearson(a, b)) < 0.1

    def test_constant_input_is_nan(self):
        assert np.isnan(pearson(np.ones(5), np.arange(5.0)))

    def test_nan_pairs_ignored(self):
        x = np.array([1.0, 2.0, np.nan, 4.0])
        y = np.array([2.0, 4.0, 100.0, 8.0])
        assert pearson(x, y) == pytest.approx(1.0)

    def test_too_few_points_is_nan(self):
        assert np.isnan(pearson([1.0], [2.0]))

    def test_spearman_monotone_nonlinear(self):
        x = np.arange(1.0, 20.0)
        assert spearman(x, x ** 3) == pytest.approx(1.0)
        assert pearson(x, x ** 3) < 1.0

    def test_spearman_handles_ties(self):
        x = np.array([1.0, 1.0, 2.0, 3.0])
        y = np.array([1.0, 1.0, 2.0, 3.0])
        assert spearman(x, y) == pytest.approx(1.0)


class TestCorrelationRatio:
    def test_category_fully_determines_value(self):
        categories = ["a"] * 5 + ["b"] * 5
        values = [1.0] * 5 + [10.0] * 5
        assert correlation_ratio(categories, values) == pytest.approx(1.0)

    def test_category_carries_no_information(self):
        rng = np.random.default_rng(3)
        categories = ["a", "b"] * 500
        values = rng.normal(size=1000).tolist()
        assert correlation_ratio(categories, values) < 0.15

    def test_constant_values_is_nan(self):
        assert np.isnan(correlation_ratio(["a", "b"], [3.0, 3.0]))

    def test_missing_categories_ignored(self):
        value = correlation_ratio(["a", None, "b"], [1.0, 99.0, 2.0])
        assert 0.0 <= value <= 1.0


class TestCramersV:
    def test_identical_attributes(self):
        x = ["a", "b", "a", "b", "c", "c"] * 5
        assert cramers_v(x, x) == pytest.approx(1.0, abs=1e-9)

    def test_independent_attributes(self):
        rng = np.random.default_rng(1)
        x = rng.choice(["a", "b"], size=5000).tolist()
        y = rng.choice(["u", "v"], size=5000).tolist()
        assert cramers_v(x, y) < 0.1

    def test_single_category_is_nan(self):
        assert np.isnan(cramers_v(["a", "a"], ["x", "y"]))


class TestTableAssociation:
    @pytest.fixture()
    def table(self, fig1_tables):
        return fig1_tables[0]

    def test_numeric_numeric_dispatch(self, table):
        assert association(table, "bonus", "salary") == pytest.approx(1.0)

    def test_numeric_categorical_dispatch(self, table):
        value = association(table, "bonus", "edu")
        assert 0.8 < value <= 1.0

    def test_categorical_categorical_dispatch(self, table):
        value = association(table, "edu", "gen")
        assert 0.0 <= value <= 1.0

    def test_association_with_target_excludes_target_and_fills_nan(self, table):
        scores = association_with_target(table, "bonus")
        assert "bonus" not in scores
        assert set(scores) == {"name", "gen", "edu", "exp", "salary"}
        assert all(0.0 <= value <= 1.0 for value in scores.values())
