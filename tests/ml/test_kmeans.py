"""Unit tests for k-means clustering."""

import numpy as np
import pytest

from repro.exceptions import ModelFitError
from repro.ml.kmeans import KMeans, choose_k_by_elbow


@pytest.fixture()
def three_blobs():
    rng = np.random.default_rng(42)
    return np.vstack(
        [
            rng.normal((0, 0), 0.2, size=(40, 2)),
            rng.normal((5, 5), 0.2, size=(40, 2)),
            rng.normal((0, 8), 0.2, size=(40, 2)),
        ]
    )


class TestKMeans:
    def test_recovers_well_separated_blobs(self, three_blobs):
        result = KMeans(3, seed=0).fit(three_blobs)
        assert sorted(result.cluster_sizes()) == [40, 40, 40]
        # each true blob maps to exactly one label
        for start in (0, 40, 80):
            assert len(set(result.labels[start:start + 40].tolist())) == 1

    def test_deterministic_under_seed(self, three_blobs):
        first = KMeans(3, seed=123).fit(three_blobs)
        second = KMeans(3, seed=123).fit(three_blobs)
        assert np.array_equal(first.labels, second.labels)
        assert first.inertia == pytest.approx(second.inertia)

    def test_inertia_decreases_with_k(self, three_blobs):
        inertias = [KMeans(k, seed=0).fit(three_blobs).inertia for k in (1, 2, 3)]
        assert inertias[0] > inertias[1] > inertias[2]

    def test_k_capped_at_number_of_points(self):
        points = np.array([[0.0], [1.0]])
        result = KMeans(5, seed=0).fit(points)
        assert result.k == 2

    def test_single_cluster(self, three_blobs):
        result = KMeans(1, seed=0).fit(three_blobs)
        assert set(result.labels.tolist()) == {0}

    def test_identical_points(self):
        points = np.ones((10, 3))
        result = KMeans(3, seed=0).fit(points)
        assert result.inertia == pytest.approx(0.0)

    def test_one_dimensional_input_reshaped(self):
        result = KMeans(2, seed=0).fit(np.array([0.0, 0.1, 10.0, 10.1]))
        assert sorted(result.cluster_sizes()) == [2, 2]

    def test_predict_assigns_nearest_centroid(self, three_blobs):
        model = KMeans(3, seed=0)
        model.fit(three_blobs)
        labels = model.predict(np.array([[0.0, 0.0], [5.0, 5.0]]))
        assert labels[0] != labels[1]

    def test_predict_before_fit_rejected(self):
        with pytest.raises(ModelFitError):
            KMeans(2).predict(np.zeros((2, 2)))

    def test_nan_input_rejected(self):
        with pytest.raises(ModelFitError):
            KMeans(2).fit(np.array([[np.nan, 1.0]]))

    def test_empty_input_rejected(self):
        with pytest.raises(ModelFitError):
            KMeans(2).fit(np.empty((0, 2)))

    def test_invalid_k_rejected(self):
        with pytest.raises(ModelFitError):
            KMeans(0)

    def test_labels_within_range(self, three_blobs):
        result = KMeans(4, seed=1).fit(three_blobs)
        assert result.labels.min() >= 0
        assert result.labels.max() < result.k


class TestElbow:
    def test_elbow_finds_three_blobs(self, three_blobs):
        assert choose_k_by_elbow(three_blobs, k_max=6, seed=0) == 3

    def test_elbow_respects_improvement_threshold(self):
        rng = np.random.default_rng(0)
        noise = rng.normal(size=(50, 2)) * 0.01
        strict = choose_k_by_elbow(noise, k_max=5, seed=0, improvement_threshold=0.6)
        assert strict <= 2
        assert 1 <= choose_k_by_elbow(noise, k_max=5, seed=0) <= 5

    def test_elbow_identical_points_returns_one(self):
        assert choose_k_by_elbow(np.ones((20, 2)), k_max=5) == 1

    def test_elbow_empty_rejected(self):
        with pytest.raises(ModelFitError):
            choose_k_by_elbow(np.empty((0, 2)))
