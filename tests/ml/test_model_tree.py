"""Unit tests for the linear model tree structure."""

import numpy as np
import pytest

from repro.exceptions import ModelFitError
from repro.ml.model_tree import LeafModel, LinearModelTree, ModelTreeLeaf, ModelTreeSplit
from repro.relational.expressions import parse_expression
from repro.relational.table import Table


@pytest.fixture()
def employees():
    return Table.from_rows(
        [
            {"edu": "PhD", "exp": 2, "bonus": 23000.0},
            {"edu": "MS", "exp": 5, "bonus": 16000.0},
            {"edu": "MS", "exp": 1, "bonus": 13000.0},
            {"edu": "BS", "exp": 2, "bonus": 11000.0},
        ]
    )


class TestLeafModel:
    def test_predict_linear_combination(self, employees):
        leaf = LeafModel(("bonus",), (1.05,), 1000.0, "bonus")
        assert leaf.predict(employees)[0] == pytest.approx(1.05 * 23000 + 1000)

    def test_identity_leaf(self, employees):
        leaf = LeafModel.identity("bonus")
        assert leaf.is_identity
        assert np.allclose(leaf.predict(employees), employees.numeric_column("bonus"))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ModelFitError):
            LeafModel(("a", "b"), (1.0,), 0.0, "a")

    def test_num_variables_ignores_zero_coefficients(self):
        leaf = LeafModel(("a", "b"), (1.0, 0.0), 5.0, "a")
        assert leaf.num_variables == 1

    def test_describe(self):
        leaf = LeafModel(("bonus",), (1.05,), 1000.0, "bonus")
        text = leaf.describe()
        assert "1.05*bonus" in text and "1000" in text
        assert "no change" in LeafModel.identity("bonus").describe()


class TestLinearModelTree:
    @pytest.fixture()
    def tree(self):
        return LinearModelTree.from_rules(
            [
                (parse_expression("edu = 'PhD'"), LeafModel(("bonus",), (1.05,), 1000.0, "bonus")),
                (parse_expression("edu = 'MS' AND exp >= 3"), LeafModel(("bonus",), (1.04,), 800.0, "bonus")),
                (parse_expression("edu = 'MS'"), LeafModel(("bonus",), (1.03,), 400.0, "bonus")),
            ],
            target="bonus",
            default=LeafModel.identity("bonus"),
        )

    def test_structure(self, tree):
        assert tree.num_leaves == 4
        assert tree.depth == 3

    def test_first_match_routing(self, tree, employees):
        predictions = tree.predict(employees)
        assert predictions[0] == pytest.approx(1.05 * 23000 + 1000)
        assert predictions[1] == pytest.approx(1.04 * 16000 + 800)
        assert predictions[2] == pytest.approx(1.03 * 13000 + 400)
        assert predictions[3] == pytest.approx(11000.0)  # identity default

    def test_none_default_yields_nan(self, employees):
        tree = LinearModelTree.from_rules(
            [(parse_expression("edu = 'PhD'"), LeafModel(("bonus",), (1.0,), 0.0, "bonus"))],
            target="bonus",
            default=None,
        )
        predictions = tree.predict(employees)
        assert not np.isnan(predictions[0])
        assert np.isnan(predictions[3])

    def test_unconditional_rule_terminates_chain(self, employees):
        tree = LinearModelTree.from_rules(
            [(None, LeafModel(("bonus",), (2.0,), 0.0, "bonus"))], target="bonus"
        )
        assert tree.num_leaves == 1
        assert np.allclose(tree.predict(employees), 2 * employees.numeric_column("bonus"))

    def test_leaves_paths_in_yes_before_no_order(self, tree):
        paths = tree.leaves()
        assert len(paths) == 4
        first_path, first_leaf = paths[0]
        assert len(first_path) == 1 and first_path[0][1] is True
        assert first_leaf is not None and not first_leaf.is_identity

    def test_manual_tree_composition(self, employees):
        split = ModelTreeSplit(
            parse_expression("exp >= 3"),
            ModelTreeLeaf(LeafModel(("bonus",), (2.0,), 0.0, "bonus")),
            ModelTreeLeaf(None),
        )
        tree = LinearModelTree(split, "bonus")
        predictions = tree.predict(employees)
        assert predictions[1] == pytest.approx(32000.0)
        assert np.isnan(predictions[0])
