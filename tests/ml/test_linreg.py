"""Unit tests for linear regression and regression metrics."""

import numpy as np
import pytest

from repro.exceptions import ModelFitError
from repro.ml.linreg import (
    LinearRegression,
    fit_linear_model,
    mean_absolute_error,
    r_squared,
    root_mean_squared_error,
    total_absolute_error,
)


@pytest.fixture()
def linear_data():
    rng = np.random.default_rng(0)
    features = rng.normal(size=(200, 3))
    target = features @ np.array([2.0, -1.5, 0.5]) + 7.0
    return features, target


class TestFitting:
    def test_exact_recovery_on_noiseless_data(self, linear_data):
        features, target = linear_data
        model = fit_linear_model(features, target)
        assert model.coefficients == pytest.approx([2.0, -1.5, 0.5], abs=1e-8)
        assert model.intercept == pytest.approx(7.0, abs=1e-8)

    def test_predict_matches_target(self, linear_data):
        features, target = linear_data
        model = fit_linear_model(features, target)
        assert np.allclose(model.predict(features), target)
        assert np.allclose(model.residuals(features, target), 0.0)

    def test_single_feature_one_dimensional_input(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        model = fit_linear_model(x, 3.0 * x + 1.0)
        assert model.coefficients[0] == pytest.approx(3.0)
        assert model.intercept == pytest.approx(1.0)

    def test_zero_features_fits_mean(self):
        target = np.array([2.0, 4.0, 6.0])
        model = LinearRegression().fit(np.empty((3, 0)), target)
        assert model.intercept == pytest.approx(4.0)
        assert np.allclose(model.predict(np.empty((3, 0))), 4.0)

    def test_nan_rows_dropped(self):
        features = np.array([[1.0], [2.0], [np.nan], [4.0]])
        target = np.array([2.0, 4.0, 100.0, 8.0])
        model = fit_linear_model(features, target)
        assert model.coefficients[0] == pytest.approx(2.0)

    def test_all_nan_rejected(self):
        with pytest.raises(ModelFitError):
            fit_linear_model(np.array([[np.nan]]), np.array([np.nan]))

    def test_mismatched_rows_rejected(self):
        with pytest.raises(ModelFitError):
            fit_linear_model(np.ones((3, 1)), np.ones(4))

    def test_collinear_features_do_not_explode(self):
        x = np.linspace(1, 10, 50)
        features = np.column_stack([x, 10 * x])
        target = 1.05 * x + 1000
        model = LinearRegression(ridge=1e-6).fit(features, target)
        assert np.allclose(model.predict(features), target, rtol=1e-4)

    def test_ridge_shrinks_coefficients(self):
        rng = np.random.default_rng(1)
        features = rng.normal(size=(100, 2))
        target = features @ np.array([5.0, -5.0])
        plain = LinearRegression().fit(features, target)
        shrunk = LinearRegression(ridge=100.0).fit(features, target)
        assert np.linalg.norm(shrunk.coefficients) < np.linalg.norm(plain.coefficients)

    def test_no_intercept_mode(self):
        x = np.array([[1.0], [2.0], [3.0]])
        model = LinearRegression(fit_intercept=False).fit(x, np.array([2.0, 4.0, 6.0]))
        assert model.intercept == 0.0
        assert model.coefficients[0] == pytest.approx(2.0)

    def test_sample_weights_prioritise_rows(self):
        features = np.array([[1.0], [2.0], [3.0], [10.0]])
        target = np.array([1.0, 2.0, 3.0, 100.0])
        weights = np.array([1.0, 1.0, 1.0, 0.0])  # ignore the outlier
        model = LinearRegression().fit(features, target, sample_weight=weights)
        assert model.coefficients[0] == pytest.approx(1.0, abs=1e-6)

    def test_predict_before_fit_rejected(self):
        with pytest.raises(ModelFitError):
            LinearRegression().predict(np.ones((2, 1)))

    def test_predict_feature_count_mismatch_rejected(self, linear_data):
        features, target = linear_data
        model = fit_linear_model(features, target)
        with pytest.raises(ModelFitError):
            model.predict(np.ones((2, 2)))

    def test_with_coefficients(self):
        model = LinearRegression().with_coefficients([1.05], 1000.0)
        assert model.is_fitted
        assert model.predict(np.array([[1000.0]]))[0] == pytest.approx(2050.0)


class TestMetrics:
    def test_r_squared_perfect_and_mean_predictor(self):
        actual = np.array([1.0, 2.0, 3.0])
        assert r_squared(actual, actual) == pytest.approx(1.0)
        assert r_squared(actual, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_r_squared_constant_actual(self):
        constant = np.array([5.0, 5.0])
        assert r_squared(constant, constant) == 1.0
        assert r_squared(constant, np.array([4.0, 6.0])) == 0.0

    def test_error_metrics(self):
        actual = np.array([1.0, 2.0, 3.0])
        predicted = np.array([2.0, 2.0, 5.0])
        assert mean_absolute_error(actual, predicted) == pytest.approx(1.0)
        assert total_absolute_error(actual, predicted) == pytest.approx(3.0)
        assert root_mean_squared_error(actual, predicted) == pytest.approx(np.sqrt(5 / 3))

    def test_metrics_ignore_nan_pairs(self):
        actual = np.array([1.0, np.nan, 3.0])
        predicted = np.array([1.0, 2.0, 4.0])
        assert total_absolute_error(actual, predicted) == pytest.approx(1.0)

    def test_evaluate_bundle(self, linear_data):
        features, target = linear_data
        metrics = fit_linear_model(features, target).evaluate(features, target)
        assert metrics.r2 == pytest.approx(1.0)
        assert metrics.total_l1 == pytest.approx(0.0, abs=1e-6)
        assert metrics.num_rows == 200
        assert set(metrics.as_dict()) == {"r2", "mae", "rmse", "total_l1", "num_rows"}
