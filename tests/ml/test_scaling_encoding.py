"""Unit tests for scalers and categorical encoders."""

import numpy as np
import pytest

from repro.exceptions import ModelFitError, SchemaError
from repro.ml.encoding import OneHotEncoder, OrdinalEncoder, TableEncoder
from repro.ml.scaling import MinMaxScaler, StandardScaler
from repro.relational.table import Table


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5.0, 3.0, size=(500, 2))
        scaled = StandardScaler().fit_transform(data)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_does_not_nan(self):
        data = np.column_stack([np.ones(10), np.arange(10.0)])
        scaled = StandardScaler().fit_transform(data)
        assert not np.isnan(scaled).any()
        assert np.allclose(scaled[:, 0], 0.0)

    def test_inverse_transform_round_trip(self):
        data = np.array([[1.0, 10.0], [2.0, 20.0], [3.0, 40.0]])
        scaler = StandardScaler()
        assert np.allclose(scaler.inverse_transform(scaler.fit_transform(data)), data)

    def test_transform_before_fit_rejected(self):
        with pytest.raises(ModelFitError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_empty_fit_rejected(self):
        with pytest.raises(ModelFitError):
            StandardScaler().fit(np.empty((0, 2)))


class TestMinMaxScaler:
    def test_range_is_unit_interval(self):
        data = np.array([[0.0, -5.0], [5.0, 0.0], [10.0, 5.0]])
        scaled = MinMaxScaler().fit_transform(data)
        assert scaled.min() == pytest.approx(0.0)
        assert scaled.max() == pytest.approx(1.0)

    def test_constant_column_maps_to_half(self):
        data = np.column_stack([np.full(5, 7.0), np.arange(5.0)])
        scaled = MinMaxScaler().fit_transform(data)
        assert np.allclose(scaled[:, 0], 0.5)

    def test_inverse_transform_round_trip(self):
        data = np.array([[1.0, 10.0], [2.0, 20.0], [3.0, 40.0]])
        scaler = MinMaxScaler()
        assert np.allclose(scaler.inverse_transform(scaler.fit_transform(data)), data)


class TestOneHotEncoder:
    def test_encoding_and_feature_names(self):
        encoder = OneHotEncoder()
        matrix = encoder.fit_transform(["a", "b", "a", "c"])
        assert matrix.shape == (4, 3)
        assert matrix[0].tolist() == [1.0, 0.0, 0.0]
        assert encoder.feature_names("col") == ["col=a", "col=b", "col=c"]

    def test_unknown_and_missing_map_to_zero(self):
        encoder = OneHotEncoder().fit(["a", "b"])
        encoded = encoder.transform(["c", None, "a"])
        assert encoded[0].sum() == 0.0
        assert encoded[1].sum() == 0.0
        assert encoded[2, 0] == 1.0

    def test_transform_before_fit_rejected(self):
        with pytest.raises(ModelFitError):
            OneHotEncoder().transform(["a"])


class TestOrdinalEncoder:
    def test_codes_follow_first_seen_order(self):
        encoder = OrdinalEncoder()
        codes = encoder.fit_transform(["b", "a", "b", "c"])
        assert codes.tolist() == [0.0, 1.0, 0.0, 2.0]
        assert encoder.decode(2) == "c"
        assert encoder.decode(99) is None

    def test_unknown_maps_to_minus_one(self):
        encoder = OrdinalEncoder().fit(["a"])
        assert encoder.transform(["z"]).tolist() == [-1.0]


class TestTableEncoder:
    @pytest.fixture()
    def table(self):
        return Table.from_rows(
            [
                {"edu": "PhD", "exp": 2, "salary": 230000.0},
                {"edu": "MS", "exp": 5, "salary": 160000.0},
                {"edu": "MS", "exp": 1, "salary": None},
            ]
        )

    def test_mixed_encoding_shape_and_names(self, table):
        encoder = TableEncoder(["edu", "exp"])
        matrix = encoder.fit_transform(table)
        assert matrix.shape == (3, 3)
        assert encoder.feature_names == ["edu=PhD", "edu=MS", "exp"]

    def test_values_scaled_to_unit_interval(self, table):
        matrix = TableEncoder(["edu", "exp", "salary"]).fit_transform(table)
        assert matrix.min() >= 0.0 and matrix.max() <= 1.0

    def test_missing_numeric_imputed_with_mean(self, table):
        encoder = TableEncoder(["salary"], scale=False)
        matrix = encoder.fit_transform(table)
        assert matrix[2, 0] == pytest.approx(195000.0)

    def test_extra_features_appended(self, table):
        encoder = TableEncoder(["edu"])
        residual = np.array([1.0, -1.0, 0.0])
        matrix = encoder.fit_transform(table, extra_features=residual, extra_names=("res",))
        assert matrix.shape == (3, 3)
        assert encoder.feature_names[-1] == "res"

    def test_extra_features_wrong_length_rejected(self, table):
        with pytest.raises(SchemaError):
            TableEncoder(["edu"]).fit_transform(table, extra_features=np.ones(5))

    def test_no_columns_and_no_extras_rejected(self, table):
        with pytest.raises(ModelFitError):
            TableEncoder([]).fit_transform(table)

    def test_feature_names_before_fit_rejected(self):
        with pytest.raises(ModelFitError):
            TableEncoder(["edu"]).feature_names
