"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.relational.csv_io import write_csv
from repro.workloads import example_snapshots


@pytest.fixture()
def example_csvs(tmp_path):
    source, target = example_snapshots()
    source_path = tmp_path / "2016.csv"
    target_path = tmp_path / "2017.csv"
    write_csv(source, source_path)
    write_csv(target, target_path)
    return source_path, target_path


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in ("summarize", "suggest", "diff", "generate"):
            args = parser.parse_args(
                [command, "a.csv", "b.csv", "--target", "x"]
                if command in ("summarize", "suggest")
                else ([command, "a.csv", "b.csv"] if command == "diff" else [command, "example"])
            )
            assert args.command == command

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_cache_server_parser_registered(self):
        args = build_parser().parse_args(
            ["cache-server", "--port", "0", "--capacity", "500", "--policy", "cost-aware"]
        )
        assert args.command == "cache-server"
        assert args.capacity == 500 and args.policy == "cost-aware"

    def test_cache_admin_parser_registered(self):
        args = build_parser().parse_args(["cache", "stats", "--cache-url", "h:1"])
        assert args.command == "cache" and args.action == "stats"
        args = build_parser().parse_args(["cache", "clear", "--cache-dir", "d"])
        assert args.action == "clear"

    def test_summarize_accepts_cache_capacity_and_url(self):
        args = build_parser().parse_args(
            ["summarize", "a.csv", "b.csv", "--target", "x",
             "--cache-capacity", "128", "--cache-backend", "remote",
             "--cache-url", "127.0.0.1:8737"]
        )
        assert args.cache_capacity == 128
        assert args.cache_backend == "remote" and args.cache_url == "127.0.0.1:8737"
        assert args.cache_replication == 1  # single copy unless asked

    def test_summarize_accepts_sharded_url_and_replication(self):
        args = build_parser().parse_args(
            ["summarize", "a.csv", "b.csv", "--target", "x",
             "--cache-backend", "remote",
             "--cache-url", "shard-a:8737,shard-b:8737,shard-c:8737",
             "--cache-replication", "2"]
        )
        assert args.cache_url == "shard-a:8737,shard-b:8737,shard-c:8737"
        assert args.cache_replication == 2


class TestCommands:
    def test_summarize_prints_ranked_summaries(self, example_csvs, capsys):
        source, target = example_csvs
        code = main([
            "summarize", str(source), str(target), "--key", "name", "--target", "bonus",
            "--top", "3", "--details",
        ])
        output = capsys.readouterr().out
        assert code == 0
        assert "#1" in output and "score=" in output
        assert "Partition treemap" in output

    def test_summarize_writes_markdown(self, example_csvs, tmp_path, capsys):
        source, target = example_csvs
        report = tmp_path / "report.md"
        code = main([
            "summarize", str(source), str(target), "--key", "name", "--target", "bonus",
            "--markdown", str(report),
        ])
        assert code == 0
        assert report.exists()
        assert "# ChARLES change summaries" in report.read_text()

    def test_summarize_with_explicit_attributes(self, example_csvs, capsys):
        source, target = example_csvs
        code = main([
            "summarize", str(source), str(target), "--key", "name", "--target", "bonus",
            "--condition-attributes", "edu", "exp",
            "--transformation-attributes", "bonus",
        ])
        assert code == 0
        assert "edu" in capsys.readouterr().out

    def test_summarize_reports_search_stats(self, example_csvs, capsys):
        source, target = example_csvs
        code = main([
            "summarize", str(source), str(target), "--key", "name", "--target", "bonus",
        ])
        output = capsys.readouterr().out
        assert code == 0
        assert "search:" in output and "candidates planned" in output

    def test_summarize_with_parallel_jobs_matches_serial(self, example_csvs, capsys):
        source, target = example_csvs
        assert main([
            "summarize", str(source), str(target), "--key", "name", "--target", "bonus",
        ]) == 0
        serial_output = capsys.readouterr().out
        assert main([
            "summarize", str(source), str(target), "--key", "name", "--target", "bonus",
            "--jobs", "2",
        ]) == 0
        parallel_output = capsys.readouterr().out
        assert "jobs=2" in parallel_output
        # everything above the search-stats line (the ranked summaries) is identical
        assert (
            serial_output.split("search:")[0] == parallel_output.split("search:")[0]
        )

    def test_summarize_disk_cache_warm_second_invocation(self, example_csvs, tmp_path, capsys):
        source, target = example_csvs
        cache_dir = tmp_path / "cache"
        argv = [
            "summarize", str(source), str(target), "--key", "name", "--target", "bonus",
            "--cache-backend", "disk", "--cache-dir", str(cache_dir),
        ]
        assert main(argv) == 0
        first_output = capsys.readouterr().out
        assert "cache=disk" in first_output
        assert (cache_dir / "fits.sqlite").exists()
        # the second invocation builds a brand-new engine over the same store
        assert main(argv) == 0
        second_output = capsys.readouterr().out
        assert "cache hit rate 100.0%" in second_output
        assert first_output.split("search:")[0] == second_output.split("search:")[0]

    def test_summarize_rejects_disk_cache_without_dir(self, example_csvs, capsys):
        source, target = example_csvs
        code = main([
            "summarize", str(source), str(target), "--key", "name", "--target", "bonus",
            "--cache-backend", "disk",
        ])
        assert code == 2
        assert "cache_dir" in capsys.readouterr().err

    def test_summarize_with_cache_capacity_matches_unbounded(self, example_csvs, capsys):
        source, target = example_csvs
        argv = ["summarize", str(source), str(target), "--key", "name", "--target", "bonus"]
        assert main(argv) == 0
        unbounded = capsys.readouterr().out
        # eviction under a tight bound recomputes work but never changes it
        assert main(argv + ["--cache-capacity", "4"]) == 0
        bounded = capsys.readouterr().out
        assert unbounded.split("search:")[0] == bounded.split("search:")[0]

    def test_summarize_rejects_remote_cache_without_url(self, example_csvs, capsys):
        source, target = example_csvs
        code = main([
            "summarize", str(source), str(target), "--key", "name", "--target", "bonus",
            "--cache-backend", "remote",
        ])
        assert code == 2
        assert "cache_url" in capsys.readouterr().err

    def test_suggest_lists_candidates(self, example_csvs, capsys):
        source, target = example_csvs
        code = main(["suggest", str(source), str(target), "--key", "name", "--target", "bonus"])
        output = capsys.readouterr().out
        assert code == 0
        assert "condition candidates" in output

    def test_diff_reports_cells_and_distance(self, example_csvs, capsys):
        source, target = example_csvs
        code = main(["diff", str(source), str(target), "--key", "name"])
        output = capsys.readouterr().out
        assert code == 0
        assert "changed cells" in output
        assert "update distance" in output
        assert "drift" in output.lower()

    def test_generate_writes_csv_pair(self, tmp_path, capsys):
        code = main([
            "generate", "employee", "--rows", "50", "--seed", "3", "--out-dir", str(tmp_path),
        ])
        assert code == 0
        assert (tmp_path / "employee_source.csv").exists()
        assert (tmp_path / "employee_target.csv").exists()

    def test_generate_example_workload(self, tmp_path):
        assert main(["generate", "example", "--out-dir", str(tmp_path)]) == 0
        assert (tmp_path / "example_source.csv").exists()

    def test_error_exit_code_on_bad_target(self, example_csvs, capsys):
        source, target = example_csvs
        code = main(["summarize", str(source), str(target), "--key", "name", "--target", "edu"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestTimelineCommand:
    @pytest.fixture()
    def chain_csvs(self, tmp_path):
        from repro.workloads import streaming_employee_timeline

        store, _ = streaming_employee_timeline(60, num_versions=3, seed=11)
        paths = []
        for version in store:
            path = tmp_path / f"{version.name}.csv"
            write_csv(version.table, path)
            paths.append(path)
        return paths

    def test_timeline_parser_registered(self):
        args = build_parser().parse_args(["timeline", "a.csv", "b.csv", "c.csv", "--target", "x"])
        assert args.command == "timeline"
        assert len(args.versions) == 3

    def test_timeline_prints_per_hop_summaries(self, chain_csvs, capsys):
        code = main([
            "timeline", *[str(p) for p in chain_csvs],
            "--key", "name", "--target", "bonus", "-c", "2", "--top", "3",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "v1 -> v2" in output and "v2 -> v3" in output
        assert "total:" in output

    def test_timeline_cold_baseline(self, chain_csvs, capsys):
        code = main([
            "timeline", *[str(p) for p in chain_csvs],
            "--key", "name", "--target", "bonus", "-c", "2", "--top", "3", "--cold",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "(cold)" in output

    def test_timeline_needs_two_versions(self, chain_csvs, capsys):
        code = main(["timeline", str(chain_csvs[0]), "--target", "bonus"])
        assert code == 2
        assert "at least two" in capsys.readouterr().err

    def test_timeline_misaligned_versions_reports_error(self, chain_csvs, tmp_path, capsys):
        from repro.workloads import generate_employees

        other = tmp_path / "other.csv"
        write_csv(generate_employees(10, seed=1), other)
        code = main([
            "timeline", str(chain_csvs[0]), str(other),
            "--key", "name", "--target", "bonus",
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_timeline_shared_cache_backend_matches_default(self, chain_csvs, capsys):
        argv = [
            "timeline", *[str(p) for p in chain_csvs],
            "--key", "name", "--target", "bonus", "-c", "2", "--top", "3",
        ]
        assert main(argv) == 0
        default_output = capsys.readouterr().out
        assert main(argv + ["--cache-backend", "shared"]) == 0
        shared_output = capsys.readouterr().out

        def summaries_only(text):
            # drop the stats lines: wall times and the cache label differ
            return [
                line
                for line in text.splitlines()
                if "jobs=" not in line and "search time" not in line
            ]

        assert summaries_only(default_output) == summaries_only(shared_output)
        assert "cache=shared" in shared_output

    def test_timeline_window_out_of_range_rejected(self, chain_csvs, capsys):
        code = main([
            "timeline", *[str(p) for p in chain_csvs],
            "--key", "name", "--target", "bonus", "--window", "5",
        ])
        assert code == 2
        assert "--window must be between 1 and 2" in capsys.readouterr().err


class TestCacheCommands:
    @pytest.fixture()
    def server(self):
        from repro.cacheserver import CacheServer

        with CacheServer() as running:
            yield running

    def test_summarize_against_cache_server_matches_memory(self, example_csvs, server, capsys):
        source, target = example_csvs
        argv = ["summarize", str(source), str(target), "--key", "name", "--target", "bonus"]
        assert main(argv) == 0
        memory_output = capsys.readouterr().out
        remote_argv = argv + ["--cache-backend", "remote", "--cache-url", server.url]
        assert main(remote_argv) == 0
        first_output = capsys.readouterr().out
        assert "cache=remote" in first_output
        assert memory_output.split("search:")[0] == first_output.split("search:")[0]
        # a second engine invocation is served off the fleet store
        assert main(remote_argv) == 0
        second_output = capsys.readouterr().out
        assert "cache hit rate 100.0%" in second_output

    def test_cache_stats_and_clear_against_running_server(self, example_csvs, server, capsys):
        source, target = example_csvs
        assert main([
            "summarize", str(source), str(target), "--key", "name", "--target", "bonus",
            "--cache-backend", "remote", "--cache-url", server.url,
        ]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-url", server.url]) == 0
        stats_output = capsys.readouterr().out
        assert '"fits"' in stats_output and '"partitions"' in stats_output
        assert '"policy": "cost-aware"' in stats_output
        assert main(["cache", "clear", "--cache-url", server.url]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-url", server.url]) == 0
        import json

        cleared = json.loads(capsys.readouterr().out)
        assert cleared["regions"]["fits"]["entries"] == 0
        assert cleared["regions"]["partitions"]["entries"] == 0

    def test_summarize_against_a_sharded_fleet_matches_memory(self, example_csvs, capsys):
        from repro.cacheserver import CacheServer

        source, target = example_csvs
        argv = ["summarize", str(source), str(target), "--key", "name", "--target", "bonus"]
        assert main(argv) == 0
        memory_output = capsys.readouterr().out
        shards = [CacheServer().start() for _ in range(2)]
        try:
            url = ",".join(shard.url for shard in shards)
            sharded_argv = argv + [
                "--cache-backend", "remote", "--cache-url", url,
                "--cache-replication", "2",
            ]
            assert main(sharded_argv) == 0
            sharded_output = capsys.readouterr().out
            assert memory_output.split("search:")[0] == sharded_output.split("search:")[0]
        finally:
            for shard in shards:
                shard.shutdown()

    def test_cache_stats_and_clear_fan_out_across_shards(self, example_csvs, capsys):
        from repro.cacheserver import CacheServer

        source, target = example_csvs
        shards = [CacheServer().start() for _ in range(2)]
        try:
            url = ",".join(shard.url for shard in shards)
            assert main([
                "summarize", str(source), str(target), "--key", "name",
                "--target", "bonus", "--cache-backend", "remote", "--cache-url", url,
            ]) == 0
            capsys.readouterr()
            assert main(["cache", "stats", "--cache-url", url]) == 0
            table = capsys.readouterr().out
            # one row per shard plus the aggregate, not a JSON blob
            for shard in shards:
                assert shard.url in table
            assert "TOTAL" in table and "entries" in table
            assert main(["cache", "clear", "--cache-url", url]) == 0
            clear_output = capsys.readouterr().out
            for shard in shards:
                assert shard.url in clear_output
            from repro.cacheserver import server_stats

            for shard in shards:
                regions = server_stats(shard.url)["regions"]
                assert all(region["entries"] == 0 for region in regions.values())
        finally:
            for shard in shards:
                shard.shutdown()

    def test_cache_stats_with_one_dead_shard_marks_it_down(self, server, capsys):
        # the fan-out must not abort on a dead shard: the live shard's
        # numbers still print, the dead one gets a DOWN row (PR 9)
        url = f"{server.url},127.0.0.1:9"
        assert main(["cache", "stats", "--cache-url", url]) == 0
        output = capsys.readouterr().out
        assert server.url in output
        assert "127.0.0.1:9" in output and "DOWN" in output

    def test_cache_stats_and_clear_against_cache_dir(self, example_csvs, tmp_path, capsys):
        source, target = example_csvs
        cache_dir = tmp_path / "cache"
        assert main([
            "summarize", str(source), str(target), "--key", "name", "--target", "bonus",
            "--cache-backend", "disk", "--cache-dir", str(cache_dir),
        ]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        stats_output = capsys.readouterr().out
        assert "fits.sqlite" in stats_output and "entries" in stats_output
        assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_cache_requires_exactly_one_store(self, tmp_path, capsys):
        assert main(["cache", "stats"]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert main([
            "cache", "stats", "--cache-url", "h:1", "--cache-dir", str(tmp_path),
        ]) == 2

    def test_cache_stats_on_an_empty_directory_errors(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 2
        assert "no cache files" in capsys.readouterr().err

    def test_cache_admin_on_a_corrupt_store_errors_instead_of_lying(self, tmp_path, capsys):
        (tmp_path / "fits.sqlite").write_bytes(b"not a sqlite database")
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 2
        assert "cache" in capsys.readouterr().err
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 2

    def test_cache_stats_against_dead_server_errors(self, capsys):
        assert main(["cache", "stats", "--cache-url", "127.0.0.1:9"]) == 2
        assert "cannot reach" in capsys.readouterr().err

    def test_cache_server_invalid_capacity_exits_cleanly(self, capsys):
        assert main(["cache-server", "--port", "0", "--capacity", "0"]) == 2
        assert "capacity" in capsys.readouterr().err


class TestPlanCommand:
    def test_plan_prints_rounds_and_histograms_without_evaluating(self, example_csvs, capsys):
        source, target = example_csvs
        code = main([
            "plan", str(source), str(target), "--key", "name", "--target", "bonus",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "search plan:" in output
        assert "candidate specs" in output
        assert "score-bound histogram" in output
        assert "round 0 (global)" in output

    def test_plan_without_bound_pruning_skips_histograms(self, example_csvs, capsys):
        source, target = example_csvs
        code = main([
            "plan", str(source), str(target), "--key", "name", "--target", "bonus",
            "--no-bound-pruning",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "bound pruning disabled" in output

    def test_summarize_plan_only_short_circuits(self, example_csvs, capsys):
        source, target = example_csvs
        code = main([
            "summarize", str(source), str(target), "--key", "name",
            "--target", "bonus", "--plan-only",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "search plan:" in output
        # no summaries were ranked or printed
        assert "#1" not in output

    def test_summarize_accepts_planning_flags(self, example_csvs, capsys):
        source, target = example_csvs
        code = main([
            "summarize", str(source), str(target), "--key", "name",
            "--target", "bonus", "--no-bound-pruning", "--no-cost-routing",
        ])
        assert code == 0
        assert "#1" in capsys.readouterr().out


class TestServeParser:
    def test_serve_parser_registered(self):
        args = build_parser().parse_args([
            "serve", "--port", "0", "--max-sessions", "16",
            "--queue-depth", "2", "--tenant-concurrency", "1",
            "--cache-backend", "memory",
        ])
        assert args.command == "serve"
        assert args.max_sessions == 16
        assert args.queue_depth == 2
        assert args.tenant_concurrency == 1
        assert args.port == 0

    def test_serve_defaults_leave_serving_config_to_the_dataclass(self):
        args = build_parser().parse_args(["serve"])
        assert args.max_sessions is None  # ServingConfig defaults apply
        assert args.session_ttl is None
        assert args.ready_file is None


class TestDeadShardStats:
    @pytest.fixture()
    def dead_endpoint(self):
        """A host:port nothing listens on (bound, then released)."""
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        return f"127.0.0.1:{port}"

    def test_stats_fanout_survives_a_dead_shard(self, dead_endpoint, capsys):
        from repro.cacheserver import CacheServer

        with CacheServer() as live:
            code = main([
                "cache", "stats", "--cache-url", f"{live.url},{dead_endpoint}"
            ])
        output = capsys.readouterr().out
        # the fan-out completed: exit 0, live shard's row present, dead
        # shard marked DOWN instead of aborting the whole table
        assert code == 0
        assert live.url in output
        assert dead_endpoint in output
        assert "DOWN" in output
        assert "TOTAL (1 shard DOWN)" in output

    def test_metrics_fanout_notes_the_dead_shard(self, dead_endpoint, capsys):
        from repro.cacheserver import CacheServer

        with CacheServer() as live:
            code = main([
                "cache", "stats", "--metrics",
                "--cache-url", f"{live.url},{dead_endpoint}",
            ])
        output = capsys.readouterr().out
        assert code == 0
        assert f"== {live.url} ==" in output
        assert "# DOWN:" in output
        assert "cacheserver_requests_total" in output or "requests" in output

    def test_clear_stays_strict_about_dead_shards(self, dead_endpoint, capsys):
        # clear is deliberately all-or-error: a half-cleared fabric serving
        # stale hit rates is worse than an explicit failure
        code = main(["cache", "clear", "--cache-url", dead_endpoint])
        assert code == 2
