"""Property test: incremental (warm) timeline runs equal cold per-pair runs.

The timeline subsystem's hard invariant is that its two performance
mechanisms — persistent content-keyed caches and warm-started pruning floors —
never change results.  This test generates random version chains (random
roster, random per-hop update policies including no-op hops) and asserts that
``summarize_timeline`` over the chain produces byte-identical rankings to
independent cold ``Charles`` runs on every pair, including under a tiny cache
capacity that forces constant LRU eviction mid-chain.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Charles, CharlesConfig
from repro.relational.table import Table
from repro.timeline import EngineSession, TimelineStore

_EDUCATIONS = ["BS", "MS", "PhD"]


@st.composite
def version_chains(draw) -> TimelineStore:
    """A 3–4 version chain of a small roster under random group updates.

    Each hop multiplies/shifts the bonus of one education group (possibly a
    no-op hop, exercising the delta short-circuit), so chains mix localised
    change, overlapping change and untouched versions.
    """
    n = draw(st.integers(8, 16))
    rows = []
    for index in range(n):
        rows.append(
            {
                "id": f"r{index}",
                "edu": draw(st.sampled_from(_EDUCATIONS)),
                "exp": draw(st.integers(0, 12)),
                "bonus": float(draw(st.integers(1_000, 30_000))),
            }
        )
    table = Table.from_rows(rows, primary_key="id")
    store = TimelineStore()
    store.append("v1", table)
    num_hops = draw(st.integers(2, 3))
    for hop in range(num_hops):
        kind = draw(st.integers(0, 3))
        if kind == 3:
            updated = table  # no-op hop: the target is untouched
        else:
            group = _EDUCATIONS[kind]
            factor = draw(st.sampled_from([1.02, 1.05, 1.1]))
            shift = float(draw(st.sampled_from([0, 250, 1000])))
            bonus = np.array(table.column("bonus"), dtype=float)
            members = np.array([edu == group for edu in table.column("edu")])
            bonus = np.where(members, np.round(factor * bonus + shift, 2), bonus)
            updated = table.with_column("bonus", [float(b) for b in bonus])
        store.append(f"v{hop + 2}", updated)
        table = updated
    return store


def _cold_rankings(store: TimelineStore, config: CharlesConfig):
    rankings = []
    for _, _, pair in store.consecutive_pairs():
        result = Charles(config).summarize_pair(pair, "bonus")
        rankings.append([(s.summary.describe(), s.score) for s in result.summaries])
    return rankings


# small caps keep the candidate space (and runtime) per example modest
_FAST = dict(max_partitions=2, top_k=3, max_condition_attributes=2)


class TestIncrementalEqualsCold:
    @given(version_chains())
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_warm_timeline_equals_cold_pairs(self, store: TimelineStore):
        config = CharlesConfig(**_FAST)
        warm = EngineSession(config).summarize_timeline(store, "bonus")
        assert warm.rankings() == _cold_rankings(store, config)

    @given(version_chains())
    @settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_equality_survives_cache_evictions(self, store: TimelineStore):
        config = CharlesConfig(search_cache_capacity=4, **_FAST)
        session = EngineSession(config)
        warm = session.summarize_timeline(store, "bonus")
        assert warm.rankings() == _cold_rankings(store, config)

    @given(version_chains())
    @settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_equality_with_aggressive_warm_floor(self, store: TimelineStore):
        # margin 0 maximises seeded-floor pruning and fallback pressure; the
        # verify-or-fallback protocol must still deliver cold rankings
        config = CharlesConfig(warm_start_margin=0.0, **_FAST)
        warm = EngineSession(config).summarize_timeline(store, "bonus")
        assert warm.rankings() == _cold_rankings(store, config)


@st.composite
def revision_chains(draw) -> TimelineStore:
    """Chains mixing bonus-policy hops with metadata-correction hops.

    Correction hops revise ``edu``/``exp`` without touching the target, which
    is the terrain of delta-patchable partition maintenance: serving the
    chain's versions against a fixed endpoint moves the *source* side of the
    pair by exactly those sparse corrections.
    """
    n = draw(st.integers(8, 14))
    rows = []
    for index in range(n):
        rows.append(
            {
                "id": f"r{index}",
                "edu": draw(st.sampled_from(_EDUCATIONS)),
                "exp": float(draw(st.integers(0, 12))),
                "bonus": float(draw(st.integers(1_000, 30_000))),
            }
        )
    table = Table.from_rows(rows, primary_key="id")
    store = TimelineStore()
    store.append("v1", table)
    for hop in range(draw(st.integers(2, 3))):
        if draw(st.booleans()):
            group = draw(st.sampled_from(_EDUCATIONS))
            factor = draw(st.sampled_from([1.05, 1.1]))
            bonus = np.array(table.column("bonus"), dtype=float)
            members = np.array([edu == group for edu in table.column("edu")])
            bonus = np.where(members, np.round(factor * bonus, 2), bonus)
            updated = table.with_column("bonus", [float(b) for b in bonus])
        else:
            # metadata correction: the target is untouched
            row = draw(st.integers(0, n - 1))
            exp = np.array(table.column("exp"), dtype=float)
            exp[row] += 1.0
            updated = table.with_column("exp", [float(e) for e in exp])
        store.append(f"v{hop + 2}", updated)
        table = updated
    return store


class TestMaintainedProvenanceSweepEqualsCold:
    """Serving every version against the chain's endpoint, one warm session.

    Each sweep step summarises ``(v_i, v_latest)``; between steps the pair's
    source moves by one hop's delta, so the session's maintenance layer sees
    patchable revisions, certificate mismatches and content hits in random
    mixture — and must deliver cold rankings through all of them.
    """

    @given(revision_chains())
    @settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_sweep_rankings_equal_cold_runs(self, store: TimelineStore):
        config = CharlesConfig(**_FAST)
        session = EngineSession(config)
        latest = store.latest.name
        for name in store.names[:-1]:
            pair = store.pair(name, latest)
            warm = session.summarize_pair(pair, "bonus")
            cold = Charles(config).summarize_pair(pair, "bonus")
            warm_ranking = [(s.summary.describe(), s.score) for s in warm.summaries]
            cold_ranking = [(s.summary.describe(), s.score) for s in cold.summaries]
            assert warm_ranking == cold_ranking
