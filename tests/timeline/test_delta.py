"""Tests for the delta layer: change masks, touch queries, reporting."""

from __future__ import annotations

import numpy as np

from repro.relational.table import Table
from repro.timeline import TimelineStore, VersionDelta


def _store():
    v1 = Table.from_rows(
        [
            {"id": "a", "dept": "ops", "pay": 100.0, "bonus": 10.0},
            {"id": "b", "dept": "ops", "pay": 200.0, "bonus": 20.0},
            {"id": "c", "dept": "eng", "pay": 300.0, "bonus": 30.0},
        ],
        primary_key="id",
    )
    v2 = v1.with_column("pay", [100.0, 250.0, 300.0])
    v3 = v2.with_column("dept", ["ops", "ops", "ops"]).with_column(
        "bonus", [10.0, 20.0, 33.0]
    )
    store = TimelineStore()
    for name, table in [("v1", v1), ("v2", v2), ("v3", v3)]:
        store.append(name, table)
    return store


class TestVersionDelta:
    def test_changed_attributes_and_masks(self):
        store = _store()
        delta = store.delta("v1", "v2")
        assert delta.changed_attributes == ("pay",)
        assert "pay" in delta and "bonus" not in delta
        assert delta.changed_mask("pay").tolist() == [False, True, False]
        assert delta.changed_mask("bonus").tolist() == [False, False, False]
        assert delta.num_changed_cells == 1
        assert not delta.is_empty

    def test_categorical_and_numeric_changes_combined(self):
        store = _store()
        delta = store.delta("v2", "v3")
        assert set(delta.changed_attributes) == {"dept", "bonus"}
        assert delta.changed_row_mask().tolist() == [False, False, True]
        assert delta.changed_row_mask(["bonus"]).tolist() == [False, False, True]
        assert delta.touches(["bonus", "pay"])
        assert not delta.touches(["pay"])

    def test_empty_delta(self):
        store = _store()
        store.append("v4", store.checkout("v3"))
        delta = store.delta("v3", "v4")
        assert delta.is_empty
        assert delta.changed_attributes == ()
        assert delta.num_changed_cells == 0
        assert "identical" in delta.describe()

    def test_attribute_deltas_sorted_most_changed_first(self):
        store = _store()
        store.append("v4", store.checkout("v3").with_column("pay", [101.0, 251.0, 301.0]))
        delta = store.delta("v1", "v4")
        deltas = delta.attribute_deltas()
        # pay changed in every row; dept and bonus tie and fall back to name order
        assert [d.attribute for d in deltas] == ["pay", "bonus", "dept"]
        assert deltas[0].changed_rows == 3
        assert deltas[0].change_fraction == 1.0

    def test_from_pair_respects_key_exclusion(self):
        store = _store()
        pair = store.pair("v1", "v2")
        delta = VersionDelta.from_pair(pair)
        assert "id" not in delta.changed_attributes

    def test_describe_mentions_rows_touched(self):
        store = _store()
        text = store.delta("v1", "v3").describe()
        assert "rows touched" in text
        assert "pay" in text and "bonus" in text

    def test_masks_are_per_attribute_not_shared(self):
        store = _store()
        delta = store.delta("v1", "v3")
        pay_mask = delta.changed_mask("pay")
        bonus_mask = delta.changed_mask("bonus")
        assert not np.array_equal(pay_mask, bonus_mask)


class TestVersionDeltaEdgeCases:
    """Pins the delta layer's behaviour at its boundaries.

    The maintenance layer (:mod:`repro.search.maintenance`) keys patch
    decisions off these exact semantics, so they are load-bearing: a change
    here silently changes which discoveries get patched.
    """

    def test_all_rows_changed(self):
        store = _store()
        every = store.checkout("v1").with_column("pay", [101.0, 201.0, 301.0])
        store.append("v_all", every)
        delta = store.delta("v1", "v_all")
        assert delta.changed_mask("pay").all()
        assert delta.changed_row_mask().all()
        assert delta.attribute_deltas()[0].change_fraction == 1.0

    def test_zero_rows_changed(self):
        store = _store()
        store.append("v_same", store.checkout("v3"))
        delta = store.delta("v3", "v_same")
        assert delta.is_empty
        assert not delta.touches(["pay", "bonus", "dept"])
        # asking for specific attributes still yields an all-false row mask
        assert not delta.changed_row_mask(["pay", "bonus"]).any()
        assert delta.changed_mask("pay").dtype == bool
        assert not delta.changed_mask("pay").any()

    def test_nan_value_flips_are_changes_but_nan_nan_is_not(self):
        v1 = Table.from_rows(
            [
                {"id": "a", "pay": 100.0},
                {"id": "b", "pay": None},
                {"id": "c", "pay": None},
                {"id": "d", "pay": 400.0},
            ],
            primary_key="id",
        )
        # a: value -> NaN, b: NaN -> value, c: NaN -> NaN, d: value -> value
        v2 = v1.with_column("pay", [None, 250.0, None, 400.0])
        store = TimelineStore()
        store.append("v1", v1)
        store.append("v2", v2)
        delta = store.delta("v1", "v2")
        # a value appearing or disappearing is a change; both sides missing is
        # not (there is no value to have changed); dtype stays boolean
        assert delta.changed_mask("pay").tolist() == [True, True, False, False]
        assert delta.num_changed_cells == 2

    def test_changed_mask_on_attribute_absent_from_delta(self):
        store = _store()
        delta = store.delta("v1", "v2")  # only "pay" changed
        absent = delta.changed_mask("bonus")
        assert absent.shape == (3,) and absent.dtype == bool and not absent.any()
        # the lookup is by name only — an attribute outside the schema also
        # yields the all-false mask rather than raising (current behaviour,
        # relied on by changed_row_mask over arbitrary attribute shortlists)
        assert not delta.changed_mask("no-such-attribute").any()
        assert not delta.touches(["no-such-attribute"])
        assert not delta.changed_row_mask(["no-such-attribute"]).any()
