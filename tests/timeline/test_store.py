"""Tests for the versioned timeline store: alignment, validation, pairing."""

from __future__ import annotations

import pytest

from repro.exceptions import SchemaError, SnapshotAlignmentError, TimelineError
from repro.relational.schema import DType, Schema
from repro.relational.table import Table
from repro.timeline import TimelineStore
from repro.workloads import example_snapshots


def _table(rows, primary_key="id"):
    return Table.from_rows(rows, primary_key=primary_key)


@pytest.fixture()
def v1():
    return _table(
        [
            {"id": "a", "grade": "junior", "pay": 100.0},
            {"id": "b", "grade": "senior", "pay": 200.0},
            {"id": "c", "grade": "senior", "pay": 300.0},
        ]
    )


class TestAppend:
    def test_append_and_checkout(self, v1):
        store = TimelineStore()
        store.append("v1", v1)
        assert store.names == ["v1"]
        assert store.key == "id"
        assert store.checkout("v1") is v1
        assert "v1" in store and "v2" not in store
        assert store.latest.name == "v1"

    def test_appended_versions_are_realigned_to_chain_order(self, v1):
        shuffled = v1.take([2, 0, 1]).with_column("pay", [330.0, 110.0, 220.0])
        store = TimelineStore()
        store.append("v1", v1)
        store.append("v2", shuffled)
        assert store.checkout("v2").column("id") == ["a", "b", "c"]
        assert store.checkout("v2").column("pay") == [110.0, 220.0, 330.0]

    def test_duplicate_name_rejected(self, v1):
        store = TimelineStore()
        store.append("v1", v1)
        with pytest.raises(TimelineError, match="already in the timeline"):
            store.append("v1", v1)

    def test_schema_mismatch_rejected(self, v1):
        store = TimelineStore()
        store.append("v1", v1)
        with pytest.raises(SnapshotAlignmentError):
            store.append("v2", v1.drop(["grade"]))

    def test_entity_set_change_rejected(self, v1):
        store = TimelineStore()
        store.append("v1", v1)
        with pytest.raises(SnapshotAlignmentError, match="same entities"):
            store.append("v2", v1.take([0, 1]).concat(_table([{"id": "z", "grade": "junior", "pay": 1.0}])))

    def test_keyless_chain_requires_equal_row_counts(self):
        keyless = Table.from_rows([{"x": 1.0}, {"x": 2.0}])
        store = TimelineStore()
        store.append("v1", keyless)
        assert store.key is None
        with pytest.raises(SnapshotAlignmentError):
            store.append("v2", Table.from_rows([{"x": 1.0}]))
        store.append("v3", Table.from_rows([{"x": 3.0}, {"x": 4.0}]))
        assert store.checkout("v3").column("x") == [3.0, 4.0]

    def test_sparse_all_missing_column_fails_loudly_at_table_construction(self, v1):
        # the satellite contract: a timeline append with an all-missing column
        # must fail at schema inference, not silently become a STRING column
        with pytest.raises(SchemaError, match="every value is missing"):
            Table.from_rows(
                [
                    {"id": "a", "grade": "junior", "pay": None},
                    {"id": "b", "grade": "senior", "pay": None},
                    {"id": "c", "grade": "senior", "pay": None},
                ]
            )
        explicit = Table.from_rows(
            [
                {"id": "a", "grade": "junior", "pay": None},
                {"id": "b", "grade": "senior", "pay": None},
                {"id": "c", "grade": "senior", "pay": None},
            ],
            schema=Schema.of(
                {"id": DType.STRING, "grade": DType.STRING, "pay": DType.FLOAT},
                primary_key="id",
            ),
        )
        store = TimelineStore()
        store.append("v1", v1)
        store.append("v2", explicit)
        assert store.checkout("v2").column("pay") == [None, None, None]


class TestPairs:
    def test_pair_between_any_versions(self, v1):
        v2 = v1.with_column("pay", [110.0, 220.0, 330.0])
        v3 = v2.with_column("pay", [120.0, 220.0, 330.0])
        store = TimelineStore()
        for name, table in [("v1", v1), ("v2", v2), ("v3", v3)]:
            store.append(name, table)
        pair = store.pair("v1", "v3")
        assert pair.key == "id"
        assert pair.source.column("pay") == [100.0, 200.0, 300.0]
        assert pair.target.column("pay") == [120.0, 220.0, 330.0]
        backwards = store.pair("v3", "v1")
        assert backwards.target.column("pay") == [100.0, 200.0, 300.0]

    def test_pair_with_itself_rejected(self, v1):
        store = TimelineStore()
        store.append("v1", v1)
        with pytest.raises(TimelineError, match="itself"):
            store.pair("v1", "v1")

    def test_unknown_version_rejected(self, v1):
        store = TimelineStore()
        store.append("v1", v1)
        with pytest.raises(TimelineError, match="unknown version"):
            store.checkout("v9")

    def test_windowed_pairs(self, v1):
        v2 = v1.with_column("pay", [110.0, 220.0, 330.0])
        v3 = v2.with_column("pay", [120.0, 230.0, 330.0])
        store = TimelineStore()
        for name, table in [("v1", v1), ("v2", v2), ("v3", v3)]:
            store.append(name, table)
        consecutive = store.consecutive_pairs()
        assert [(s.name, t.name) for s, t, _ in consecutive] == [("v1", "v2"), ("v2", "v3")]
        wide = store.windowed_pairs(2)
        assert [(s.name, t.name) for s, t, _ in wide] == [("v1", "v3")]
        with pytest.raises(TimelineError):
            store.windowed_pairs(0)

    def test_example_snapshots_timeline(self):
        source, target = example_snapshots()
        store = TimelineStore(key="name")
        store.append("2016", source)
        store.append("2017", target)
        pair = store.pair("2016", "2017")
        assert pair.changed_attributes() == ["exp", "bonus"]
