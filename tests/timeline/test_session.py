"""Tests for the warm engine session: cache reuse, warm floors, hard invariants."""

from __future__ import annotations

import pytest

from repro.core import Charles, CharlesConfig
from repro.exceptions import DiscoveryError
from repro.timeline import EngineSession, TimelineStore
from repro.workloads import streaming_employee_timeline


def _ranking(result):
    return [(s.summary.describe(), s.score) for s in result.summaries]


# a reduced search space keeps these end-to-end tests fast without changing
# any of the mechanisms under test
_FAST = dict(max_partitions=2, max_condition_attributes=2, top_k=5)


@pytest.fixture(scope="module")
def chain():
    """A 4-version streaming chain (3 hops; includes only bonus-touching hops)."""
    store, _ = streaming_employee_timeline(100, num_versions=4, seed=13)
    return store


class TestWarmEqualsCold:
    def test_timeline_rankings_match_cold_per_pair_runs(self, chain):
        config = CharlesConfig(**_FAST)
        cold = [
            _ranking(Charles(config).summarize_pair(pair, "bonus"))
            for _, _, pair in chain.consecutive_pairs()
        ]
        warm = EngineSession(config).summarize_timeline(chain, "bonus")
        assert warm.rankings() == cold

    def test_equality_holds_with_tiny_cache_capacity(self, chain):
        config = CharlesConfig(search_cache_capacity=8, **_FAST)
        cold = [
            _ranking(Charles(config).summarize_pair(pair, "bonus"))
            for _, _, pair in chain.consecutive_pairs()
        ]
        session = EngineSession(config)
        warm = session.summarize_timeline(chain, "bonus")
        assert warm.rankings() == cold
        assert session.cache_counters().evictions > 0

    def test_equality_holds_without_warm_start(self, chain):
        config = CharlesConfig(warm_start=False, **_FAST)
        cold = [
            _ranking(Charles(config).summarize_pair(pair, "bonus"))
            for _, _, pair in chain.consecutive_pairs()
        ]
        session = EngineSession(config)
        warm = session.summarize_timeline(chain, "bonus")
        assert warm.rankings() == cold
        assert all(not hop.stats.warm_started for hop in warm.hops if hop.stats)


class TestCachePersistence:
    def test_requerying_the_same_pair_is_fully_cached(self, chain):
        session = EngineSession(CharlesConfig(**_FAST))
        _, _, pair = chain.consecutive_pairs()[0]
        first = session.summarize_pair(pair, "bonus")
        before = session.cache_counters()
        second = session.summarize_pair(pair, "bonus")
        after = session.cache_counters()
        assert _ranking(first) == _ranking(second)
        # the re-query recomputes nothing: every fit and partition discovery hits
        assert after.fit_misses == before.fit_misses
        assert after.partition_misses == before.partition_misses
        assert after.fit_hits > before.fit_hits

    def test_session_counters_accumulate_across_runs(self, chain):
        session = EngineSession(CharlesConfig(**_FAST))
        for _, _, pair in chain.consecutive_pairs():
            session.summarize_pair(pair, "bonus")
        counters = session.cache_counters()
        assert counters.fit_hits > 0 and counters.partition_misses > 0
        assert session.runs_completed == len(chain) - 1


class TestWarmStartFloors:
    def test_floor_is_seeded_from_previous_run(self, chain):
        session = EngineSession(CharlesConfig(**_FAST))
        hops = chain.consecutive_pairs()
        assert session.warm_floor("bonus") is None
        first = session.summarize_pair(hops[0][2], "bonus")
        config = session.config
        expected = first.summaries[config.top_k - 1].score - config.warm_start_margin
        assert session.warm_floor("bonus") == pytest.approx(expected)
        second = session.summarize_pair(hops[1][2], "bonus")
        assert second.search_stats.warm_started

    def test_fallback_restores_cold_ranking_when_floor_overshoots(self, chain):
        # an absurd margin of 0 with a manually inflated floor must trigger the
        # verify-or-fallback path and still return the cold ranking
        config = CharlesConfig(warm_start_margin=0.0, **_FAST)
        session = EngineSession(config)
        hops = chain.consecutive_pairs()
        session.summarize_pair(hops[0][2], "bonus")
        session._floors["bonus"] = 0.999  # force an unbeatable seed
        result = session.summarize_pair(hops[1][2], "bonus")
        cold = Charles(config).summarize_pair(hops[1][2], "bonus")
        assert _ranking(result) == _ranking(cold)
        assert session.warm_start_fallbacks == 1
        assert result.search_stats.warm_start_fallback

    def test_no_seed_when_pruning_disabled(self, chain):
        session = EngineSession(CharlesConfig(prune_search=False, **_FAST))
        hops = chain.consecutive_pairs()
        session.summarize_pair(hops[0][2], "bonus")
        assert session.warm_floor("bonus") is None


class TestDeltaShortCircuit:
    def test_untouched_hops_skip_the_search(self):
        store, policies = streaming_employee_timeline(80, num_versions=6, seed=13)
        # hop 4 of the policy sequence is the salary-only COLA: bonus untouched
        assert policies[3].target == "salary"
        session = EngineSession(CharlesConfig(**_FAST))
        result = session.summarize_timeline(store, "bonus")
        skipped = result.hops[3]
        assert skipped.delta.touches(["salary"])
        assert not skipped.delta.touches(["bonus"])
        assert skipped.stats.candidates_enumerated == 0
        assert skipped.result.best.summary.label == "no change detected"
        # the skipped hop's ranking still matches a cold run on the same pair
        cold = Charles(CharlesConfig(**_FAST)).summarize_pair(store.pair("v4", "v5"), "bonus")
        assert skipped.ranking() == _ranking(cold)

    def test_short_circuit_validates_target(self, chain):
        session = EngineSession()
        pair = chain.consecutive_pairs()[0][2]
        with pytest.raises(DiscoveryError, match="numeric"):
            session._unchanged_result(pair, "edu")


class TestFacadeIntegration:
    def test_charles_session_shares_config(self, chain):
        charles = Charles(CharlesConfig(top_k=5))
        session = charles.session()
        assert isinstance(session, EngineSession)
        assert session.config.top_k == 5

    def test_charles_summarize_timeline_matches_session(self, chain):
        config = CharlesConfig(**_FAST)
        via_facade = Charles(config).summarize_timeline(chain, "bonus")
        via_session = EngineSession(config).summarize_timeline(chain, "bonus")
        assert via_facade.rankings() == via_session.rankings()
        assert via_facade.target == "bonus"
        assert len(via_facade) == len(chain) - 1

    def test_timeline_result_describe_and_lookup(self, chain):
        result = EngineSession(CharlesConfig(**_FAST)).summarize_timeline(chain, "bonus")
        text = result.describe()
        assert "v1 -> v2" in text and "total:" in text
        hop = result.hop("v2", "v3")
        assert hop.source_version == "v2"
        with pytest.raises(Exception, match="no hop"):
            result.hop("v1", "v9")


class TestLifecycle:
    """close() releases caches exactly once; a closed session refuses work."""

    def test_close_is_idempotent(self, chain):
        session = EngineSession(CharlesConfig(**_FAST))
        session.summarize_pair(chain.consecutive_pairs()[0][2], "bonus")
        session.close()
        session.close()  # second close must be a no-op, not a double-release
        assert session.closed

    def test_use_after_close_raises(self, chain):
        from repro.exceptions import SessionClosedError

        session = EngineSession(CharlesConfig(**_FAST))
        session.close()
        pair = chain.consecutive_pairs()[0][2]
        with pytest.raises(SessionClosedError):
            session.summarize_pair(pair, "bonus")
        with pytest.raises(SessionClosedError):
            session.summarize_timeline(chain, "bonus")

    def test_touch_and_idle_clock(self, chain):
        import time as time_module

        session = EngineSession(CharlesConfig(**_FAST))
        assert session.idle_seconds >= 0.0
        time_module.sleep(0.02)
        before = session.idle_seconds
        session.touch()
        assert session.idle_seconds < before
        session.close()

    def test_queries_reset_the_idle_clock(self, chain):
        import time as time_module

        session = EngineSession(CharlesConfig(**_FAST))
        time_module.sleep(0.02)
        session.summarize_pair(chain.consecutive_pairs()[0][2], "bonus")
        assert session.idle_seconds < 0.02
        session.close()
