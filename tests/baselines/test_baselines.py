"""Unit tests for the baseline summarisers."""

import numpy as np
import pytest

from repro.baselines import (
    PARTITION_STRATEGIES,
    ablation_summary,
    exhaustive_summary,
    global_regression_summary,
    greedy_tree_summary,
    label_changed_rows,
    uniform_percentage_summary,
)
from repro.core import CharlesConfig, score_summary
from repro.exceptions import ConfigurationError, DiscoveryError
from repro.relational.snapshot import SnapshotPair
from repro.relational.table import Table


class TestExhaustiveBaseline:
    def test_one_rule_per_changed_row(self, fig1_pair):
        summary = exhaustive_summary(fig1_pair, "bonus")
        assert summary.size == 7
        assert score_summary(summary, fig1_pair).accuracy == pytest.approx(1.0)

    def test_interpretability_lower_than_charles(self, fig1_pair, fig1_result, default_config):
        exhaustive = score_summary(exhaustive_summary(fig1_pair, "bonus"), fig1_pair, default_config)
        assert exhaustive.interpretability < fig1_result.best.breakdown.interpretability

    def test_requires_key(self, fig1_tables):
        source, target = fig1_tables
        keyless = SnapshotPair.align(
            Table.from_rows(source.to_rows()), Table.from_rows(target.to_rows())
        )
        with pytest.raises(DiscoveryError):
            exhaustive_summary(keyless, "bonus")

    def test_non_numeric_target_rejected(self, fig1_pair):
        with pytest.raises(DiscoveryError):
            exhaustive_summary(fig1_pair, "edu")


class TestGlobalRegressionBaseline:
    def test_single_trivial_condition_rule(self, fig1_pair):
        summary = global_regression_summary(fig1_pair, "bonus", ["bonus", "salary"])
        assert summary.size == 1
        assert summary.conditional_transformations[0].condition.is_trivial

    def test_accuracy_between_nothing_and_charles(self, fig1_pair, fig1_result):
        breakdown = score_summary(
            global_regression_summary(fig1_pair, "bonus", ["bonus"]), fig1_pair
        )
        assert 0.0 < breakdown.accuracy < fig1_result.best.breakdown.accuracy

    def test_changed_rows_only_variant(self, fig1_pair):
        summary = global_regression_summary(
            fig1_pair, "bonus", ["bonus"], changed_rows_only=True
        )
        assert summary.size == 1

    def test_no_change_produces_empty_summary(self, fig1_tables):
        source, _ = fig1_tables
        pair = SnapshotPair.align(source, source)
        assert global_regression_summary(pair, "bonus", ["bonus"], changed_rows_only=True).size == 0

    def test_requires_numeric_attributes(self, fig1_pair):
        with pytest.raises(DiscoveryError):
            global_regression_summary(fig1_pair, "bonus", ["edu"])

    def test_uniform_percentage_is_r4(self, fig1_pair):
        summary = uniform_percentage_summary(fig1_pair, "bonus")
        assert summary.size == 1
        transformation = summary.conditional_transformations[0].transformation
        # "everyone receives about 6% increase on last year's bonus"
        assert transformation.feature_names == ("bonus",)
        assert 1.04 <= transformation.coefficients[0] <= 1.12


class TestGreedyTreeBaseline:
    def test_recovers_structure_on_generated_data(self, employee_200):
        summary = greedy_tree_summary(
            employee_200, "bonus", ["edu", "exp"], ["bonus"], max_depth=3
        )
        breakdown = score_summary(summary, employee_200)
        assert breakdown.accuracy > 0.9
        assert 1 <= summary.size <= 8

    def test_max_depth_bounds_rule_count(self, employee_200):
        shallow = greedy_tree_summary(employee_200, "bonus", ["edu", "exp"], ["bonus"], max_depth=1)
        assert shallow.size <= 2

    def test_non_numeric_target_rejected(self, fig1_pair):
        with pytest.raises(DiscoveryError):
            greedy_tree_summary(fig1_pair, "edu", ["exp"], ["salary"])

    def test_handles_numeric_condition_attributes(self, montgomery_400):
        summary = greedy_tree_summary(
            montgomery_400, "base_salary", ["grade", "department"], ["base_salary"]
        )
        assert score_summary(summary, montgomery_400).accuracy > 0.5


class TestPartitionAblation:
    def test_labels_have_one_entry_per_changed_row(self, fig1_pair):
        for strategy in PARTITION_STRATEGIES:
            labels = label_changed_rows(
                fig1_pair, "bonus", ["edu", "exp"], ["bonus"], 3, strategy
            )
            assert labels.shape == (7,)
            assert labels.min() >= 0

    def test_unknown_strategy_rejected(self, fig1_pair):
        with pytest.raises(ConfigurationError):
            label_changed_rows(fig1_pair, "bonus", ["edu"], ["bonus"], 3, "magic")

    def test_charles_strategy_beats_random_on_average(self, employee_200):
        config = CharlesConfig()
        scores = {}
        for strategy in ("charles", "random"):
            summary = ablation_summary(
                employee_200, "bonus", ["edu", "exp"], ["bonus"], 3, strategy, config
            )
            scores[strategy] = score_summary(summary, employee_200, config).accuracy
        assert scores["charles"] >= scores["random"]

    def test_every_strategy_produces_a_summary(self, employee_200):
        for strategy in PARTITION_STRATEGIES:
            summary = ablation_summary(
                employee_200, "bonus", ["edu", "exp"], ["bonus"], 3, strategy
            )
            assert summary.target == "bonus"

    def test_no_change_gives_empty_labels(self, fig1_tables):
        source, _ = fig1_tables
        pair = SnapshotPair.align(source, source)
        labels = label_changed_rows(pair, "bonus", ["edu"], ["bonus"], 3, "charles")
        assert labels.size == 0
