"""Unit tests for snapshot alignment (the ChARLES input contract)."""

import numpy as np
import pytest

from repro.exceptions import SnapshotAlignmentError
from repro.relational.snapshot import SnapshotPair
from repro.relational.table import Table


def _table(rows, key="id"):
    return Table.from_rows(rows, primary_key=key)


@pytest.fixture()
def source():
    return _table(
        [
            {"id": "a", "grp": "x", "v": 10.0},
            {"id": "b", "grp": "x", "v": 20.0},
            {"id": "c", "grp": "y", "v": 30.0},
        ]
    )


class TestAlignment:
    def test_align_reorders_target_by_key(self, source):
        target = _table(
            [
                {"id": "c", "grp": "y", "v": 33.0},
                {"id": "a", "grp": "x", "v": 10.0},
                {"id": "b", "grp": "x", "v": 22.0},
            ]
        )
        pair = SnapshotPair.align(source, target)
        assert pair.key == "id"
        assert pair.target.column("id") == ["a", "b", "c"]
        assert pair.target.column("v") == [10.0, 22.0, 33.0]

    def test_schema_mismatch_rejected(self, source):
        other = _table([{"id": "a", "grp": "x", "w": 1.0}])
        with pytest.raises(SnapshotAlignmentError):
            SnapshotPair.align(source, other)

    def test_inserted_or_deleted_entities_rejected(self, source):
        target = _table(
            [
                {"id": "a", "grp": "x", "v": 10.0},
                {"id": "b", "grp": "x", "v": 20.0},
                {"id": "d", "grp": "y", "v": 40.0},
            ]
        )
        with pytest.raises(SnapshotAlignmentError):
            SnapshotPair.align(source, target)

    def test_duplicate_keys_rejected(self):
        duplicated = _table([{"id": "a", "v": 1.0}, {"id": "a", "v": 2.0}])
        with pytest.raises(SnapshotAlignmentError):
            SnapshotPair.align(duplicated, duplicated)

    def test_positional_alignment_without_key(self):
        left = Table.from_columns({"v": [1.0, 2.0]})
        right = Table.from_columns({"v": [1.0, 3.0]})
        pair = SnapshotPair.align(left, right)
        assert pair.key is None
        assert pair.changed_mask("v").tolist() == [False, True]

    def test_positional_alignment_row_count_mismatch_rejected(self):
        left = Table.from_columns({"v": [1.0, 2.0]})
        right = Table.from_columns({"v": [1.0]})
        with pytest.raises(SnapshotAlignmentError):
            SnapshotPair.align(left, right)


class TestChangeInspection:
    @pytest.fixture()
    def pair(self, source):
        target = _table(
            [
                {"id": "a", "grp": "x", "v": 11.0},
                {"id": "b", "grp": "x", "v": 20.0},
                {"id": "c", "grp": "z", "v": 33.0},
            ]
        )
        return SnapshotPair.align(source, target)

    def test_changed_mask_numeric(self, pair):
        assert pair.changed_mask("v").tolist() == [True, False, True]

    def test_changed_mask_categorical(self, pair):
        assert pair.changed_mask("grp").tolist() == [False, False, True]

    def test_changed_attributes_excludes_key(self, pair):
        assert pair.changed_attributes() == ["grp", "v"]

    def test_change_fraction(self, pair):
        assert pair.change_fraction("v") == pytest.approx(2 / 3)

    def test_delta(self, pair):
        assert pair.delta("v").tolist() == [1.0, 0.0, 3.0]

    def test_delta_rejects_categorical(self, pair):
        with pytest.raises(SnapshotAlignmentError):
            pair.delta("grp")

    def test_numeric_tolerance(self, source):
        target = source.with_column("v", [10.0 + 1e-12, 20.0, 30.0])
        pair = SnapshotPair.align(source, target)
        assert not pair.changed_mask("v").any()

    def test_restricted(self, pair):
        sub = pair.restricted(np.array([True, False, True]))
        assert sub.num_rows == 2
        assert sub.key_values == ["a", "c"]
        assert sub.changed_mask("v").tolist() == [True, True]

    def test_combined_view(self, pair):
        combined = pair.combined("v")
        assert "v_old" in combined.column_names and "v_new" in combined.column_names
        assert combined.column("v_new") == [11.0, 20.0, 33.0]

    def test_len_and_key_values(self, pair):
        assert len(pair) == 3
        assert pair.key_values == ["a", "b", "c"]


class TestChangedMaskMissingness:
    def _pair(self, old, new):
        from repro.relational.schema import DType, Schema
        from repro.relational.table import Table

        schema = Schema.of({"id": DType.STRING, "pay": DType.FLOAT}, primary_key="id")
        source = Table.from_rows(
            [{"id": str(i), "pay": v} for i, v in enumerate(old)], schema=schema
        )
        target = Table.from_rows(
            [{"id": str(i), "pay": v} for i, v in enumerate(new)], schema=schema
        )
        return SnapshotPair.align(source, target, key="id")

    def test_value_to_missing_counts_as_change(self):
        pair = self._pair([5000.0, 1.0], [None, 1.0])
        assert pair.changed_mask("pay").tolist() == [True, False]

    def test_missing_to_value_counts_as_change(self):
        pair = self._pair([None, 1.0], [7.5, 1.0])
        assert pair.changed_mask("pay").tolist() == [True, False]

    def test_missing_on_both_sides_is_unchanged(self):
        pair = self._pair([None, 2.0], [None, 2.5])
        assert pair.changed_mask("pay").tolist() == [False, True]

    def test_timeline_delta_sees_value_to_missing_edits(self):
        from repro.timeline import VersionDelta

        pair = self._pair([5000.0, 1.0], [None, 1.0])
        delta = VersionDelta.from_pair(pair)
        assert delta.changed_attributes == ("pay",)
        assert delta.num_changed_cells == 1
