"""Unit tests for the columnar Table."""

import numpy as np
import pytest

from repro.exceptions import SchemaError
from repro.relational.schema import DType, Schema
from repro.relational.table import Table


class TestConstruction:
    def test_from_rows_infers_schema(self, small_table):
        assert small_table.num_rows == 5
        assert small_table.schema.column("age").dtype is DType.INT
        assert small_table.schema.column("income").dtype is DType.FLOAT
        assert small_table.schema.column("active").dtype is DType.BOOL
        assert small_table.primary_key == "id"

    def test_from_rows_empty_without_schema_rejected(self):
        with pytest.raises(SchemaError):
            Table.from_rows([])

    def test_from_columns(self):
        table = Table.from_columns({"a": [1, 2, 3], "b": ["x", "y", "z"]})
        assert table.num_rows == 3
        assert table.column("b") == ["x", "y", "z"]

    def test_from_columns_with_explicit_schema_coerces(self):
        schema = Schema.of({"a": DType.FLOAT})
        table = Table.from_columns({"a": ["1", "2.5"]}, schema=schema)
        assert table.column("a") == [1.0, 2.5]

    def test_empty_table(self):
        table = Table.empty(Schema.of({"a": DType.INT}))
        assert table.num_rows == 0 and len(table) == 0

    def test_ragged_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table(Schema.of({"a": DType.INT, "b": DType.INT}), {"a": [1], "b": [1, 2]})

    def test_all_missing_column_inference_rejected(self):
        # an all-None column carries no type evidence; silently inferring
        # STRING used to mistype sparse numeric columns
        with pytest.raises(SchemaError, match="column 'b'.*every value is missing"):
            Table.from_rows([{"a": 1, "b": None}, {"a": 2, "b": None}])
        with pytest.raises(SchemaError, match="every value is missing"):
            Table.from_columns({"a": [None, None]})

    def test_all_missing_column_allowed_with_explicit_dtype(self):
        schema = Schema.of({"a": DType.INT, "b": DType.FLOAT})
        table = Table.from_rows([{"a": 1, "b": None}, {"a": 2, "b": None}], schema=schema)
        assert table.column("b") == [None, None]
        assert table.schema.column("b").dtype is DType.FLOAT

    def test_with_column_all_missing_requires_dtype(self, small_table):
        with pytest.raises(SchemaError, match="every value is missing"):
            small_table.with_column("note", [None] * small_table.num_rows)
        explicit = small_table.with_column(
            "note", [None] * small_table.num_rows, dtype=DType.STRING
        )
        assert explicit.column("note") == [None] * small_table.num_rows

    def test_partially_missing_column_still_inferred(self):
        table = Table.from_rows([{"a": None}, {"a": 2.5}])
        assert table.schema.column("a").dtype is DType.FLOAT

    def test_missing_column_data_rejected(self):
        with pytest.raises(SchemaError):
            Table(Schema.of({"a": DType.INT, "b": DType.INT}), {"a": [1]})


class TestAccess:
    def test_column_returns_copy(self, small_table):
        values = small_table.column("age")
        values[0] = 999
        assert small_table.column("age")[0] == 30

    def test_numeric_column_handles_missing(self, small_table):
        income = small_table.numeric_column("income")
        assert np.isnan(income[4])
        assert income[0] == 55000.0

    def test_numeric_column_rejects_categorical(self, small_table):
        with pytest.raises(SchemaError):
            small_table.numeric_column("city")

    def test_numeric_matrix_shape_and_empty(self, small_table):
        matrix = small_table.numeric_matrix(["age", "income"])
        assert matrix.shape == (5, 2)
        assert small_table.numeric_matrix([]).shape == (5, 0)

    def test_row_and_rows(self, small_table):
        assert small_table.row(2)["city"] == "Salt Lake"
        assert len(small_table.to_rows()) == 5
        with pytest.raises(IndexError):
            small_table.row(5)

    def test_key_values(self, small_table):
        assert small_table.key_values() == ["a", "b", "c", "d", "e"]

    def test_key_values_without_key_are_positions(self):
        table = Table.from_columns({"x": [10, 20]})
        assert table.key_values() == [0, 1]

    def test_unique_preserves_order_and_skips_missing(self, small_table):
        assert small_table.unique("city") == ["Boston", "Salt Lake", "Amherst"]

    def test_head(self, small_table):
        assert small_table.head(2).num_rows == 2
        assert small_table.head(100).num_rows == 5

    def test_equality(self, small_table):
        assert small_table == small_table.take(range(small_table.num_rows))
        assert small_table != small_table.take([0, 1])


class TestTransformation:
    def test_take_reorders(self, small_table):
        taken = small_table.take([3, 0])
        assert taken.column("id") == ["d", "a"]

    def test_mask_selects(self, small_table):
        masked = small_table.mask([True, False, False, True, False])
        assert masked.column("id") == ["a", "d"]

    def test_mask_wrong_length_rejected(self, small_table):
        with pytest.raises(SchemaError):
            small_table.mask([True])

    def test_filter_predicate(self, small_table):
        young = small_table.filter(lambda row: row["age"] < 40)
        assert young.column("id") == ["a", "c", "e"]

    def test_project_and_drop(self, small_table):
        projected = small_table.project(["id", "age"])
        assert projected.column_names == ["id", "age"]
        dropped = small_table.drop(["city", "active"])
        assert dropped.column_names == ["id", "age", "income"]

    def test_rename(self, small_table):
        renamed = small_table.rename({"income": "salary"})
        assert "salary" in renamed.schema.names
        assert renamed.column("salary") == small_table.column("income")

    def test_with_column_adds_and_replaces(self, small_table):
        with_bonus = small_table.with_column("bonus", [1.0, 2.0, 3.0, 4.0, 5.0])
        assert with_bonus.num_columns == small_table.num_columns + 1
        replaced = with_bonus.with_column("bonus", [9.0] * 5)
        assert replaced.column("bonus") == [9.0] * 5

    def test_with_column_wrong_length_rejected(self, small_table):
        with pytest.raises(SchemaError):
            small_table.with_column("x", [1, 2])

    def test_sort_by_missing_last(self, small_table):
        ordered = small_table.sort_by("income")
        assert ordered.column("id")[-1] == "e"
        assert ordered.column("income")[0] == 48000.0

    def test_sort_descending(self, small_table):
        ordered = small_table.sort_by("age", descending=True)
        assert ordered.column("age")[0] == 58

    def test_concat(self, small_table):
        doubled = small_table.concat(small_table)
        assert doubled.num_rows == 10

    def test_concat_schema_mismatch_rejected(self, small_table):
        other = Table.from_columns({"x": [1]})
        with pytest.raises(SchemaError):
            small_table.concat(other)

    def test_group_by(self, small_table):
        groups = small_table.group_by(["city"])
        assert set(key[0] for key in groups) == {"Boston", "Salt Lake", "Amherst"}
        assert groups[("Boston",)].num_rows == 2

    def test_join_inner(self):
        left = Table.from_rows([{"k": 1, "a": "x"}, {"k": 2, "a": "y"}], primary_key="k")
        right = Table.from_rows([{"k": 1, "b": 10}, {"k": 3, "b": 30}])
        joined = left.join(right, on="k")
        assert joined.num_rows == 1
        assert joined.row(0)["b"] == 10

    def test_join_no_matches_returns_empty(self):
        left = Table.from_rows([{"k": 1, "a": "x"}])
        right = Table.from_rows([{"k": 2, "b": 10}])
        assert left.join(right, on="k").num_rows == 0


class TestSummaries:
    def test_describe(self, small_table):
        stats = small_table.describe("age")
        assert stats["count"] == 5
        assert stats["min"] == 25 and stats["max"] == 58

    def test_describe_all_missing(self):
        table = Table.from_columns({"x": [None, None]}, schema=Schema.of({"x": DType.FLOAT}))
        assert table.describe("x")["count"] == 0

    def test_value_counts(self, small_table):
        counts = small_table.value_counts("city")
        assert counts == {"Boston": 2, "Salt Lake": 1, "Amherst": 2}
