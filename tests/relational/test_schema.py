"""Unit tests for schemas, columns and dtype coercion."""

import pytest

from repro.exceptions import SchemaError
from repro.relational.schema import Column, DType, Schema


class TestDType:
    def test_numeric_flags(self):
        assert DType.INT.is_numeric and DType.FLOAT.is_numeric
        assert not DType.STRING.is_numeric and not DType.BOOL.is_numeric

    def test_categorical_flags(self):
        assert DType.STRING.is_categorical and DType.BOOL.is_categorical
        assert not DType.INT.is_categorical


class TestColumnCoercion:
    def test_int_from_string_with_commas(self):
        assert Column("n", DType.INT).coerce("1,234") == 1234

    def test_int_rejects_fractional_float(self):
        with pytest.raises(SchemaError):
            Column("n", DType.INT).coerce(1.5)

    def test_int_accepts_integral_float(self):
        assert Column("n", DType.INT).coerce(3.0) == 3

    def test_float_strips_currency_symbols(self):
        assert Column("s", DType.FLOAT).coerce("$230,000") == pytest.approx(230000.0)

    def test_missing_markers_become_none(self):
        column = Column("s", DType.FLOAT)
        assert column.coerce("") is None
        assert column.coerce("NA") is None
        assert column.coerce(None) is None

    def test_not_nullable_rejects_missing(self):
        with pytest.raises(SchemaError):
            Column("s", DType.FLOAT, nullable=False).coerce(None)

    def test_bool_parsing(self):
        column = Column("b", DType.BOOL)
        assert column.coerce("yes") is True
        assert column.coerce("F") is False
        assert column.coerce(1) is True

    def test_bool_rejects_garbage(self):
        with pytest.raises(SchemaError):
            Column("b", DType.BOOL).coerce("maybe")

    def test_string_passthrough(self):
        assert Column("s", DType.STRING).coerce(12) == "12"

    def test_coerce_many(self):
        assert Column("n", DType.INT).coerce_many(["1", "2", None]) == [1, 2, None]

    def test_unknown_dtype_rejected(self):
        with pytest.raises(SchemaError):
            Column("x", "decimal")  # type: ignore[arg-type]

    def test_string_dtype_accepted_by_name(self):
        assert Column("x", "float").dtype is DType.FLOAT  # type: ignore[arg-type]

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("", DType.INT)


class TestSchema:
    def test_of_builds_ordered_columns(self):
        schema = Schema.of({"a": DType.INT, "b": "string"}, primary_key="a")
        assert schema.names == ["a", "b"]
        assert schema.primary_key == "a"

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema((Column("a", DType.INT), Column("a", DType.FLOAT)))

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema(())

    def test_unknown_primary_key_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of({"a": DType.INT}, primary_key="b")

    def test_column_lookup_and_contains(self):
        schema = Schema.of({"a": DType.INT, "b": DType.STRING})
        assert schema.column("b").dtype is DType.STRING
        assert "a" in schema and "z" not in schema
        with pytest.raises(SchemaError):
            schema.column("z")

    def test_numeric_and_categorical_names(self):
        schema = Schema.of({"a": DType.INT, "b": DType.STRING, "c": DType.FLOAT})
        assert schema.numeric_names == ["a", "c"]
        assert schema.categorical_names == ["b"]

    def test_project_keeps_key_only_if_included(self):
        schema = Schema.of({"a": DType.INT, "b": DType.STRING}, primary_key="a")
        assert schema.project(["a"]).primary_key == "a"
        assert schema.project(["b"]).primary_key is None

    def test_with_column_appends_or_replaces(self):
        schema = Schema.of({"a": DType.INT})
        extended = schema.with_column(Column("b", DType.FLOAT))
        assert extended.names == ["a", "b"]
        replaced = extended.with_column(Column("b", DType.STRING))
        assert replaced.column("b").dtype is DType.STRING
        assert len(replaced) == 2

    def test_equivalent_to_ignores_primary_key(self):
        schema_a = Schema.of({"a": DType.INT, "b": DType.FLOAT}, primary_key="a")
        schema_b = Schema.of({"a": DType.INT, "b": DType.FLOAT})
        assert schema_a.equivalent_to(schema_b)

    def test_equivalent_to_detects_dtype_mismatch(self):
        schema_a = Schema.of({"a": DType.INT})
        schema_b = Schema.of({"a": DType.FLOAT})
        assert not schema_a.equivalent_to(schema_b)
