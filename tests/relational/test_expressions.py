"""Unit tests for the expression AST and the condition parser."""

import numpy as np
import pytest

from repro.exceptions import ExpressionError
from repro.relational.expressions import (
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    IsIn,
    Literal,
    Not,
    Or,
    parse_expression,
)
from repro.relational.table import Table


@pytest.fixture()
def employees() -> Table:
    return Table.from_rows(
        [
            {"name": "Anne", "edu": "PhD", "exp": 2, "salary": 230000.0},
            {"name": "Amber", "edu": "MS", "exp": 5, "salary": 160000.0},
            {"name": "Allen", "edu": "MS", "exp": 1, "salary": 130000.0},
            {"name": "Cathy", "edu": "BS", "exp": 2, "salary": None},
        ],
        primary_key="name",
    )


class TestASTEvaluation:
    def test_equality_on_strings(self, employees):
        mask = Comparison(ColumnRef("edu"), "=", Literal("MS")).mask(employees)
        assert mask.tolist() == [False, True, True, False]

    def test_numeric_comparison_ignores_missing(self, employees):
        mask = Comparison(ColumnRef("salary"), ">", Literal(150000)).mask(employees)
        assert mask.tolist() == [True, True, False, False]

    def test_between_inclusive(self, employees):
        mask = Between(ColumnRef("exp"), 2, 5).mask(employees)
        assert mask.tolist() == [True, True, False, True]

    def test_is_in(self, employees):
        mask = IsIn(ColumnRef("edu"), ("PhD", "BS")).mask(employees)
        assert mask.tolist() == [True, False, False, True]

    def test_and_or_not(self, employees):
        is_ms = Comparison(ColumnRef("edu"), "=", Literal("MS"))
        senior = Comparison(ColumnRef("exp"), ">=", Literal(3))
        assert And((is_ms, senior)).mask(employees).tolist() == [False, True, False, False]
        assert Or((is_ms, senior)).mask(employees).tolist() == [False, True, True, False]
        assert Not(is_ms).mask(employees).tolist() == [True, False, False, True]

    def test_operator_overloads(self, employees):
        is_ms = Comparison(ColumnRef("edu"), "=", Literal("MS"))
        junior = Comparison(ColumnRef("exp"), "<", Literal(3))
        combined = is_ms & junior
        assert combined.mask(employees).tolist() == [False, False, True, False]
        assert (~combined).mask(employees).tolist() == [True, True, False, True]

    def test_arithmetic(self, employees):
        expr = Arithmetic(ColumnRef("salary"), "/", Literal(10))
        values = expr.evaluate(employees)
        assert values[0] == pytest.approx(23000.0)
        assert np.isnan(values[3])

    def test_mask_of_non_predicate_rejected(self, employees):
        with pytest.raises(ExpressionError):
            ColumnRef("salary").mask(employees)

    def test_columns_collection(self):
        expr = And((Comparison(ColumnRef("a"), "<", Literal(1)),
                    Comparison(ColumnRef("b"), "=", Literal("x"))))
        assert expr.columns() == {"a", "b"}

    def test_unknown_comparison_operator_rejected(self):
        with pytest.raises(ExpressionError):
            Comparison(ColumnRef("a"), "~", Literal(1))

    def test_empty_and_or(self, employees):
        assert And(()).mask(employees).all()
        assert not Or(()).mask(employees).any()


class TestParser:
    def test_simple_comparison(self, employees):
        expr = parse_expression("exp >= 3")
        assert expr.mask(employees).tolist() == [False, True, False, False]

    def test_string_equality_and_conjunction(self, employees):
        expr = parse_expression("edu = 'MS' AND exp < 3")
        assert expr.mask(employees).tolist() == [False, False, True, False]

    def test_or_and_precedence(self, employees):
        expr = parse_expression("edu = 'PhD' OR edu = 'MS' AND exp >= 3")
        # AND binds tighter than OR
        assert expr.mask(employees).tolist() == [True, True, False, False]

    def test_parentheses_override_precedence(self, employees):
        expr = parse_expression("(edu = 'PhD' OR edu = 'MS') AND exp >= 3")
        assert expr.mask(employees).tolist() == [False, True, False, False]

    def test_not(self, employees):
        expr = parse_expression("NOT edu = 'MS'")
        assert expr.mask(employees).tolist() == [True, False, False, True]

    def test_between(self, employees):
        expr = parse_expression("exp BETWEEN 2 AND 4")
        assert expr.mask(employees).tolist() == [True, False, False, True]

    def test_in_list(self, employees):
        expr = parse_expression("edu IN ('PhD', 'BS')")
        assert expr.mask(employees).tolist() == [True, False, False, True]

    def test_arithmetic_in_comparison(self, employees):
        expr = parse_expression("salary / 10 > 14000")
        assert expr.mask(employees).tolist() == [True, True, False, False]

    def test_quoted_identifier(self):
        table = Table.from_rows([{"Base Salary": 100.0}, {"Base Salary": 50.0}])
        expr = parse_expression("`Base Salary` >= 75")
        assert expr.mask(table).tolist() == [True, False]

    def test_not_equals_both_spellings(self, employees):
        assert str(parse_expression("exp != 2")) == str(parse_expression("exp <> 2"))

    def test_roundtrip_through_str(self, employees):
        original = parse_expression("edu = 'MS' AND exp >= 3")
        reparsed = parse_expression(str(original))
        assert reparsed.mask(employees).tolist() == original.mask(employees).tolist()

    @pytest.mark.parametrize("bad", ["", "   ", "edu = ", "AND exp < 3", "exp ** 2", "edu = 'MS' extra junk'"])
    def test_invalid_expressions_rejected(self, bad):
        with pytest.raises(ExpressionError):
            parse_expression(bad)

    def test_boolean_and_null_literals(self):
        table = Table.from_rows([{"flag": True}, {"flag": False}])
        assert parse_expression("flag = TRUE").mask(table).tolist() == [True, False]
