"""Unit tests for CSV reading/writing and type inference."""

import pytest

from repro.exceptions import SchemaError
from repro.relational.csv_io import (
    infer_column_dtype,
    read_csv,
    read_csv_text,
    write_csv,
    write_csv_text,
)
from repro.relational.schema import DType, Schema
from repro.relational.table import Table


class TestTypeInference:
    @pytest.mark.parametrize(
        "values,expected",
        [
            (["1", "2", "3"], DType.INT),
            (["1.5", "2"], DType.FLOAT),
            (["$1,200.50", "3"], DType.FLOAT),
            (["true", "false"], DType.BOOL),
            (["yes", "no"], DType.BOOL),
            (["abc", "1"], DType.STRING),
            (["1", ""], DType.INT),
        ],
    )
    def test_infer_column_dtype(self, values, expected):
        assert infer_column_dtype(values) is expected

    def test_all_missing_column_rejected(self):
        with pytest.raises(SchemaError, match="every value is missing"):
            infer_column_dtype(["", "NA"])
        with pytest.raises(SchemaError, match="column 'pay'"):
            read_csv_text("id,pay\na,\nb,NA\n")
        # an explicit schema keeps entirely-missing columns loadable
        schema = Schema.of({"id": DType.STRING, "pay": DType.FLOAT})
        table = read_csv_text("id,pay\na,\nb,NA\n", schema=schema)
        assert table.column("pay") == [None, None]


class TestReadCsv:
    def test_read_infers_types(self):
        table = read_csv_text("name,age,salary\nAnne,30,230000.5\nBob,41,120000\n")
        assert table.schema.column("age").dtype is DType.INT
        assert table.schema.column("salary").dtype is DType.FLOAT
        assert table.column("name") == ["Anne", "Bob"]

    def test_read_with_explicit_schema(self):
        schema = Schema.of({"a": DType.STRING, "b": DType.FLOAT})
        table = read_csv_text("a,b\n01,2\n", schema=schema)
        assert table.column("a") == ["01"]
        assert table.column("b") == [2.0]

    def test_read_with_primary_key(self):
        table = read_csv_text("id,v\nx,1\ny,2\n", primary_key="id")
        assert table.primary_key == "id"

    def test_blank_lines_skipped(self):
        table = read_csv_text("a,b\n1,2\n\n3,4\n")
        assert table.num_rows == 2

    def test_missing_values_become_none(self):
        table = read_csv_text("a,b\n1,\n2,5\n")
        assert table.column("b") == [None, 5]

    def test_empty_input_rejected(self):
        with pytest.raises(SchemaError):
            read_csv_text("")

    def test_ragged_row_rejected(self):
        with pytest.raises(SchemaError):
            read_csv_text("a,b\n1\n")

    def test_empty_header_name_rejected(self):
        with pytest.raises(SchemaError):
            read_csv_text("a,,c\n1,2,3\n")

    def test_custom_delimiter(self):
        table = read_csv_text("a;b\n1;2\n", delimiter=";")
        assert table.column_names == ["a", "b"]


class TestRoundTrip:
    def test_text_round_trip_preserves_values(self, small_table):
        text = write_csv_text(small_table)
        back = read_csv_text(text, primary_key="id")
        assert back.column("age") == small_table.column("age")
        assert back.column("income") == small_table.column("income")
        assert back.column("city") == small_table.column("city")

    def test_file_round_trip(self, tmp_path, small_table):
        path = tmp_path / "t.csv"
        write_csv(small_table, path)
        back = read_csv(path, primary_key="id")
        assert back.num_rows == small_table.num_rows
        assert back.column_names == small_table.column_names

    def test_none_serialised_as_empty(self):
        table = Table.from_columns({"a": [1, None]}, schema=Schema.of({"a": DType.FLOAT}))
        assert "\r\n1.0" in write_csv_text(table) or "\n1.0" in write_csv_text(table)
        assert read_csv_text(write_csv_text(table)).column("a") == [1.0, None]
