"""Setuptools entry point.

A plain ``setup.py`` (no ``pyproject.toml``) so that ``pip install -e .``
works in fully offline environments — legacy editable installs do not require
the ``wheel`` package to be present.  Installing provides the ``charles``
console command; without installing, ``PYTHONPATH=src python -m repro.cli``
is equivalent.
"""

from setuptools import find_packages, setup

setup(
    name="charles-repro",
    version="1.0.0",
    description=(
        "ChARLES reproduction: change-aware recovery of latent evolution "
        "semantics in relational data"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["charles=repro.cli:main"]},
)
