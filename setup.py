"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in fully
offline environments (legacy editable installs do not require the ``wheel``
package to be present).
"""

from setuptools import setup

setup()
